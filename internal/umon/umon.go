// Package umon implements shadow-tag utility monitors: small sampled-set
// LRU tag stacks that estimate, for one tint's reference stream, how many
// hits the tint would see with any number of columns — without running a
// separate simulation per candidate allocation.
//
// The mechanism is the UMON of utility-based cache partitioning: every
// sampled set keeps a stack of recently seen tags ordered by recency. An
// access that finds its tag at stack depth d would hit in any allocation of
// more than d columns, so a histogram of stack distances, summed from the
// top, yields the hit curve hits(k) for k = 1..depth in one pass over the
// stream. The controller compares the marginal slope of these curves across
// tints to decide where the next column is worth the most.
//
// Monitors are deliberately cheap: only every SampleEvery'th set keeps a
// stack, so the estimates are sampled counts, comparable across tints that
// share the same sampling. The monitor is a shadow structure — it never
// touches the real cache and sees only the addresses the machine routes to
// its tint.
package umon

import (
	"fmt"

	"colcache/internal/memory"
)

// Config sizes a monitor. The geometry must mirror the monitored cache so
// shadow sets align with real sets.
type Config struct {
	NumSets   int // sets of the monitored cache (power of two)
	LineBytes int // cache line size (power of two)
	// Depth is the tag-stack depth per sampled set: the largest column
	// allocation the monitor can evaluate (usually the cache's total ways).
	Depth int
	// SampleEvery keeps a stack only for sets whose index is a multiple of
	// it; 1 (the default when 0) monitors every set.
	SampleEvery int
}

func (c Config) withDefaults() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	return c
}

func (c Config) validate() error {
	if !memory.IsPow2(c.NumSets) || c.NumSets <= 0 {
		return fmt.Errorf("umon: set count %d is not a positive power of two", c.NumSets)
	}
	if !memory.IsPow2(c.LineBytes) || c.LineBytes <= 0 {
		return fmt.Errorf("umon: line size %d is not a positive power of two", c.LineBytes)
	}
	if c.Depth < 1 {
		return fmt.Errorf("umon: stack depth %d < 1", c.Depth)
	}
	return nil
}

// Monitor is one tint's shadow-tag monitor. It is not safe for concurrent
// use; the simulated machine is single-ported.
type Monitor struct {
	cfg       Config
	lineShift uint
	setShift  uint
	setMask   uint64

	// stacks[sampled set index] is the set's tag stack, most recent first.
	stacks map[int][]uint64
	// hist[d] counts sampled accesses whose tag sat at stack depth d: they
	// would hit with any allocation of at least d+1 columns.
	hist []int64
	// misses counts sampled accesses whose tag was not on the stack at all
	// (cold, or reused beyond Depth) — misses at every allocation.
	misses  int64
	sampled int64
}

// New builds a monitor.
func New(cfg Config) (*Monitor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Monitor{
		cfg:       cfg,
		lineShift: memory.Log2(cfg.LineBytes),
		setShift:  memory.Log2(cfg.NumSets),
		setMask:   uint64(cfg.NumSets) - 1,
		stacks:    make(map[int][]uint64),
		hist:      make([]int64, cfg.Depth),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Monitor {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the monitor's configuration (with defaults applied).
func (m *Monitor) Config() Config { return m.cfg }

// Observe feeds one access of the monitored tint. Addresses outside the
// sampled sets are ignored.
func (m *Monitor) Observe(addr memory.Addr) {
	lineNum := uint64(addr) >> m.lineShift
	set := int(lineNum & m.setMask)
	if set%m.cfg.SampleEvery != 0 {
		return
	}
	tag := lineNum >> m.setShift
	m.sampled++
	stack := m.stacks[set]
	for d, t := range stack {
		if t == tag {
			m.hist[d]++
			// Move to front.
			copy(stack[1:d+1], stack[:d])
			stack[0] = tag
			return
		}
	}
	m.misses++
	if len(stack) < m.cfg.Depth {
		stack = append(stack, 0)
	}
	copy(stack[1:], stack)
	stack[0] = tag
	m.stacks[set] = stack
}

// Hits estimates the sampled hits this epoch had the tint owned `ways`
// columns. Values beyond the stack depth saturate at Hits(Depth).
func (m *Monitor) Hits(ways int) int64 {
	if ways > m.cfg.Depth {
		ways = m.cfg.Depth
	}
	var n int64
	for d := 0; d < ways; d++ {
		n += m.hist[d]
	}
	return n
}

// Sampled returns how many accesses landed in sampled sets this epoch.
func (m *Monitor) Sampled() int64 { return m.sampled }

// Misses returns the sampled accesses that would miss at any allocation
// this epoch (cold lines and reuse beyond the stack depth).
func (m *Monitor) Misses() int64 { return m.misses }

// Histogram returns a copy of the stack-distance histogram.
func (m *Monitor) Histogram() []int64 {
	out := make([]int64, len(m.hist))
	copy(out, m.hist)
	return out
}

// ResetEpoch clears the histogram and counters while keeping the tag stacks
// warm, so the next epoch's estimates see steady-state recency rather than a
// wave of artificial cold misses.
func (m *Monitor) ResetEpoch() {
	for i := range m.hist {
		m.hist[i] = 0
	}
	m.misses, m.sampled = 0, 0
}

// Reset clears everything, including the tag stacks.
func (m *Monitor) Reset() {
	m.stacks = make(map[int][]uint64)
	m.ResetEpoch()
}
