package umon

import (
	"testing"

	"colcache/internal/memory"
)

// addrFor builds an address landing in the given set with the given tag for
// a 16-set, 32B-line geometry.
func addrFor(set int, tag uint64) memory.Addr {
	return memory.Addr((tag<<4 | uint64(set)) << 5)
}

func TestStackDistanceHistogram(t *testing.T) {
	m := MustNew(Config{NumSets: 16, LineBytes: 32, Depth: 4})
	// Tags A B C, then A again: A is at stack depth 2 → hit with ≥3 ways.
	m.Observe(addrFor(0, 1))
	m.Observe(addrFor(0, 2))
	m.Observe(addrFor(0, 3))
	m.Observe(addrFor(0, 1))
	if got := m.Misses(); got != 3 {
		t.Errorf("Misses() = %d, want 3 cold", got)
	}
	if got := m.Hits(2); got != 0 {
		t.Errorf("Hits(2) = %d, want 0 (reuse distance is 2)", got)
	}
	for _, ways := range []int{3, 4, 10} {
		if got := m.Hits(ways); got != 1 {
			t.Errorf("Hits(%d) = %d, want 1", ways, got)
		}
	}
	if got := m.Sampled(); got != 4 {
		t.Errorf("Sampled() = %d, want 4", got)
	}
}

func TestMoveToFront(t *testing.T) {
	m := MustNew(Config{NumSets: 16, LineBytes: 32, Depth: 4})
	// A B A B: after the cold pair, each re-reference is at depth 1.
	m.Observe(addrFor(3, 1))
	m.Observe(addrFor(3, 2))
	m.Observe(addrFor(3, 1))
	m.Observe(addrFor(3, 2))
	if got := m.Hits(1); got != 0 {
		t.Errorf("Hits(1) = %d, want 0", got)
	}
	if got := m.Hits(2); got != 2 {
		t.Errorf("Hits(2) = %d, want 2", got)
	}
}

func TestDepthEviction(t *testing.T) {
	m := MustNew(Config{NumSets: 16, LineBytes: 32, Depth: 2})
	// A B C pushes A off a depth-2 stack; re-referencing A misses again.
	m.Observe(addrFor(0, 1))
	m.Observe(addrFor(0, 2))
	m.Observe(addrFor(0, 3))
	m.Observe(addrFor(0, 1))
	if got := m.Misses(); got != 4 {
		t.Errorf("Misses() = %d, want 4 (deep reuse counts as miss)", got)
	}
	if got := m.Hits(2); got != 0 {
		t.Errorf("Hits(2) = %d, want 0", got)
	}
}

func TestSampling(t *testing.T) {
	m := MustNew(Config{NumSets: 16, LineBytes: 32, Depth: 4, SampleEvery: 4})
	for set := 0; set < 16; set++ {
		m.Observe(addrFor(set, 7))
	}
	// Only sets 0, 4, 8, 12 are monitored.
	if got := m.Sampled(); got != 4 {
		t.Errorf("Sampled() = %d, want 4", got)
	}
}

func TestResetEpochKeepsStacksWarm(t *testing.T) {
	m := MustNew(Config{NumSets: 16, LineBytes: 32, Depth: 4})
	m.Observe(addrFor(0, 9))
	m.ResetEpoch()
	if m.Sampled() != 0 || m.Misses() != 0 {
		t.Fatalf("counters not cleared: sampled=%d misses=%d", m.Sampled(), m.Misses())
	}
	m.Observe(addrFor(0, 9))
	if got := m.Hits(1); got != 1 {
		t.Errorf("Hits(1) = %d after warm reset, want 1 (stack kept)", got)
	}
	m.Reset()
	m.Observe(addrFor(0, 9))
	if got := m.Misses(); got != 1 {
		t.Errorf("Misses() = %d after full reset, want 1 (stack dropped)", got)
	}
}

func TestHistogramCopy(t *testing.T) {
	m := MustNew(Config{NumSets: 16, LineBytes: 32, Depth: 3})
	m.Observe(addrFor(0, 1))
	m.Observe(addrFor(0, 1))
	h := m.Histogram()
	if len(h) != 3 || h[0] != 1 {
		t.Fatalf("Histogram() = %v, want [1 0 0]", h)
	}
	h[0] = 99
	if m.Hits(1) != 1 {
		t.Error("Histogram() aliases internal state")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{NumSets: 3, LineBytes: 32, Depth: 4},  // non-pow2 sets
		{NumSets: 16, LineBytes: 33, Depth: 4}, // non-pow2 line
		{NumSets: 16, LineBytes: 32, Depth: 0}, // no depth
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
}
