package experiments

import (
	"bytes"
	"testing"

	"colcache/internal/workloads/gzipsim"
)

func TestPageColorComparison(t *testing.T) {
	rows, err := RunPageColorComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	pc, col := rows[0], rows[1]
	// Both schemes isolate the hot table completely.
	if pc.TableMisses != 0 {
		t.Errorf("page coloring left %d table misses", pc.TableMisses)
	}
	if col.TableMisses != 0 {
		t.Errorf("column caching left %d table misses", col.TableMisses)
	}
	// The remap asymmetry is the paper's point: a copy vs a table write.
	if pc.RemapCost < 100*col.RemapCost {
		t.Errorf("remap asymmetry too small: page coloring %d vs column %d cycles",
			pc.RemapCost, col.RemapCost)
	}
	var buf bytes.Buffer
	if err := PageColorComparisonTable(rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestGranularityComparison(t *testing.T) {
	rows, err := RunGranularityComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	unmanaged, sun, tints := rows[0], rows[1], rows[2]
	// Region tints eliminate the table's conflict misses (the count is an
	// estimate — compulsory stream misses are subtracted pro rata — so
	// allow one round of estimation slack on top of the 64 cold fills).
	if tints.TableMisses > 400 {
		t.Errorf("region tints left %d table misses", tints.TableMisses)
	}
	// ...while both coarser schemes leave the table exposed — the Sun
	// scheme to the job's own stream, the unmanaged cache to everything.
	if sun.TableMisses <= 5*tints.TableMisses {
		t.Errorf("process masks unexpectedly protected the table: %d vs tints %d",
			sun.TableMisses, tints.TableMisses)
	}
	if unmanaged.TableMisses < sun.TableMisses {
		t.Errorf("unmanaged (%d) better than process masks (%d)",
			unmanaged.TableMisses, sun.TableMisses)
	}
	// CPI must not degrade under tints.
	if tints.JobCPI > sun.JobCPI+0.01 {
		t.Errorf("tints CPI %.3f worse than Sun %.3f", tints.JobCPI, sun.JobCPI)
	}
	var buf bytes.Buffer
	if err := GranularityComparisonTable(rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestL2Comparison(t *testing.T) {
	job := gzipsim.Job(gzipsim.Config{WindowBytes: 4096}, 0)
	rows, err := RunL2Comparison(job.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	l1only, l2, l2masked := rows[0], rows[1], rows[2]
	if l2.CPI >= l1only.CPI {
		t.Errorf("L2 did not lower CPI: %.3f vs %.3f", l2.CPI, l1only.CPI)
	}
	if l2.L2HitRate <= 0 {
		t.Error("L2 never hit")
	}
	// A masked L2 constrains placement; it must still beat L1-only.
	if l2masked.CPI >= l1only.CPI {
		t.Errorf("masked L2 worse than no L2: %.3f vs %.3f", l2masked.CPI, l1only.CPI)
	}
	var buf bytes.Buffer
	if err := L2ComparisonTable(rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestJitterExperiment(t *testing.T) {
	cfg := DefaultJitterConfig
	cfg.Seeds = 4
	cfg.TargetInstructions = 1 << 18
	rows, err := RunJitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	std, mapped := rows[0], rows[1]
	if std.Mapped || !mapped.Mapped {
		t.Fatal("row order wrong")
	}
	// The mapped configuration is nearly immune to quantum jitter...
	if spread := mapped.MaxCPI - mapped.MinCPI; spread > 0.02 {
		t.Errorf("mapped CPI spread %.4f under jitter", spread)
	}
	// ...and its mean is better than the standard cache's at this quantum.
	if mapped.MeanCPI >= std.MeanCPI {
		t.Errorf("mapped mean %.3f not better than standard %.3f", mapped.MeanCPI, std.MeanCPI)
	}
	// The standard cache visibly wobbles with the effective quantum.
	if stdSpread := std.MaxCPI - std.MinCPI; stdSpread < 2*(mapped.MaxCPI-mapped.MinCPI) {
		t.Errorf("standard spread %.4f not clearly larger than mapped %.4f",
			stdSpread, mapped.MaxCPI-mapped.MinCPI)
	}
	var buf bytes.Buffer
	if err := JitterTable(rows, cfg).Write(&buf); err != nil {
		t.Fatal(err)
	}
}
