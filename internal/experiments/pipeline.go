package experiments

import (
	"fmt"

	"colcache/internal/cache"
	"colcache/internal/layout"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/workloads/mpeg"
)

// Dynamic-layout experiment on the MPEG pipeline (paper §3.2): the three
// decoder routines share a block buffer whose hot companions change per
// routine, so per-procedure remapping beats any single whole-program
// assignment on a pure column cache (no dedicated scratchpad).

// PipelineResult is one configuration's outcome.
type PipelineResult struct {
	Configuration string
	Cycles        int64
	RemapWrites   int64
}

// RunPipelineDynamic measures the shared-buffer MPEG pipeline under the
// whole-program static layout and under §3.2 dynamic per-procedure
// remapping, on a 2KB 4-column cache.
func RunPipelineDynamic(cfg mpeg.Config) ([]PipelineResult, []layout.Decision, error) {
	pp := mpeg.Pipeline(cfg)
	phases := make([]layout.Phase, len(pp))
	for i, ph := range pp {
		phases[i] = layout.Phase{Name: ph.Name, Trace: ph.Prog.Trace, Vars: ph.Vars}
	}
	m := layout.Machine{Columns: 4, ColumnBytes: 512}
	dp, err := layout.BuildDynamic(phases, m, 0)
	if err != nil {
		return nil, nil, err
	}
	newSys := func() *memsys.System {
		return memsys.MustNew(memsys.Config{
			Geometry: memory.MustGeometry(32, 64),
			Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
			Timing:   memsys.DefaultTiming,
		})
	}

	// Static: the whole-program layout applied once.
	static := newSys()
	if _, err := layout.Apply(dp.Global, static, 0); err != nil {
		return nil, nil, err
	}
	var staticCycles int64
	for _, ph := range phases {
		staticCycles += static.Run(ph.Trace)
	}

	// Dynamic: remap between procedures when the decisions say so.
	dyn := newSys()
	results, err := layout.ExecuteDynamic(dyn, phases, dp)
	if err != nil {
		return nil, nil, err
	}
	var dynCycles, remapWrites int64
	for _, r := range results {
		dynCycles += r.Cycles
		remapWrites += r.RemapWrites
	}

	// Unmanaged baseline for scale.
	unmanaged := newSys()
	var unmanagedCycles int64
	for _, ph := range phases {
		unmanagedCycles += unmanaged.Run(ph.Trace)
	}

	return []PipelineResult{
		{Configuration: "unmanaged cache", Cycles: unmanagedCycles},
		{Configuration: "static whole-program layout", Cycles: staticCycles},
		{Configuration: "dynamic per-procedure layout (§3.2)", Cycles: dynCycles, RemapWrites: remapWrites},
	}, dp.Decisions, nil
}

// PipelineTable renders the experiment.
func PipelineTable(rows []PipelineResult, decisions []layout.Decision) *Table {
	t := &Table{
		Title:   "MPEG pipeline with shared block buffer: static vs dynamic layout (2KB, 4 columns)",
		Headers: []string{"configuration", "cycles", "remap writes"},
	}
	for _, r := range rows {
		t.AddRow(r.Configuration, fmt.Sprintf("%d", r.Cycles), fmt.Sprintf("%d", r.RemapWrites))
	}
	return t
}

// PipelineDecisionsTable renders the per-phase remap decisions.
func PipelineDecisionsTable(decisions []layout.Decision) *Table {
	t := &Table{
		Title:   "Per-procedure remap decisions",
		Headers: []string{"procedure", "keep-cost", "phase-cost", "remap?"},
	}
	for _, d := range decisions {
		t.AddRow(d.Phase, fmt.Sprintf("%d", d.KeepCost), fmt.Sprintf("%d", d.PhaseCost),
			fmt.Sprintf("%v", d.Remap))
	}
	return t
}
