package experiments

import (
	"fmt"

	"colcache/internal/cache"
	"colcache/internal/controller"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/replacement"
	"colcache/internal/sched"
	"colcache/internal/workloads/gzipsim"
	"colcache/internal/workloads/mpeg"
	"colcache/internal/workloads/synth"
)

// The adaptive-control experiment exercises the runtime half of the paper:
// where every other experiment computes a column layout offline and holds
// it for the whole run, here the epoch-based controller
// (internal/controller) watches shadow-tag utility monitors and remaps
// tints with tint.Table.SetMask while the workload runs.
//
// Two scenarios:
//
//   - Phase shift: a synthetic two-region workload whose hot working set
//     alternates between the regions. Each region alone overflows any
//     static share that also serves the other phase, so the best static
//     whole-run split thrashes through half the run; the controller follows
//     the phases and must deliver a lower overall miss rate than the best
//     static split — the experiment's headline claim.
//
//   - Multiprogrammed co-run: an MPEG routine and a gzip job round-robin on
//     one cache, the controller balancing columns between the two programs'
//     tints against a sweep of static splits.

// AdaptiveConfig parameterizes both scenarios.
type AdaptiveConfig struct {
	LineBytes int
	PageBytes int
	Sets      int
	Ways      int
	Timing    memsys.Timing

	// Phase-shift workload: two RegionBytes regions, Phases phases of
	// Passes sweeps each, plus Touches stray reads of the cold region per
	// pass.
	RegionBytes uint64
	Phases      int
	Passes      int
	Touches     int

	// Controller knobs (shared by both scenarios).
	EpochAccesses int64
	MinGainHits   int64

	// Co-run scenario: mpeg idct + gzip round-robin.
	MPEG         mpeg.Config
	Gzip         gzipsim.Config
	CoRunQuantum int64
	CoRunTarget  int64
}

// DefaultAdaptiveConfig runs a 16KB, 8-column cache. The 12KB regions need
// 6 of the 8 columns when hot, so no static split can hold both phases.
var DefaultAdaptiveConfig = AdaptiveConfig{
	LineBytes:     32,
	PageBytes:     4096,
	Sets:          64,
	Ways:          8,
	Timing:        memsys.DefaultTiming,
	RegionBytes:   12 * 1024,
	Phases:        6,
	Passes:        40,
	Touches:       8,
	EpochAccesses: 2048,
	MinGainHits:   16,
	MPEG:          mpeg.DefaultConfig,
	Gzip:          gzipsim.Config{WindowBytes: 4096},
	CoRunQuantum:  4096,
	CoRunTarget:   1 << 18,
}

// AdaptiveRun is one configuration's whole-run measurement.
type AdaptiveRun struct {
	Label    string
	Accesses int64
	Misses   int64
	MissRate float64
	CPI      float64
	// Remaps counts every tint-table write of the run: the two initial
	// MapRegion writes, and for adaptive runs the controller's epoch
	// decisions on top.
	Remaps int64
}

// AdaptiveData is the experiment's full dataset.
type AdaptiveData struct {
	Config         AdaptiveConfig
	PhaseStatic    []AdaptiveRun // one per static split, A = 1..Ways-1 columns
	PhaseAdaptive  AdaptiveRun
	PhaseDecisions []controller.Decision
	CoRunStatic    []AdaptiveRun // one per static split, mpeg = 1..Ways-1 columns
	CoRunAdaptive  AdaptiveRun
	CoRunDecisions []controller.Decision
}

// BestPhaseStatic returns the index of the lowest-miss-rate static split of
// the phase-shift scenario.
func (d *AdaptiveData) BestPhaseStatic() int {
	best := 0
	for i, r := range d.PhaseStatic {
		if r.MissRate < d.PhaseStatic[best].MissRate {
			best = i
		}
	}
	return best
}

// newAdaptiveSystem builds the scenario machine.
func newAdaptiveSystem(cfg AdaptiveConfig) (*memsys.System, error) {
	return memsys.New(memsys.Config{
		Geometry: memory.MustGeometry(cfg.LineBytes, cfg.PageBytes),
		Cache: cache.Config{
			LineBytes: cfg.LineBytes,
			NumSets:   cfg.Sets,
			NumWays:   cfg.Ways,
		},
		Timing: cfg.Timing,
	})
}

// attachController maps the two regions to fresh tints, hands them to a new
// controller and hooks it to the machine. The even initial split the
// controller applies is the adaptive run's starting point.
func attachController(sys *memsys.System, cfg AdaptiveConfig, a, b memory.Region) (*controller.Controller, error) {
	half := replacement.Range(0, cfg.Ways/2)
	otherHalf := replacement.Range(cfg.Ways/2, cfg.Ways)
	ta, err := sys.MapRegion(a, half)
	if err != nil {
		return nil, err
	}
	tb, err := sys.MapRegion(b, otherHalf)
	if err != nil {
		return nil, err
	}
	ctl, err := controller.New(sys.Tints(), cfg.Sets, cfg.LineBytes,
		[]controller.Spec{
			{ID: ta, Min: 1, Max: cfg.Ways - 1},
			{ID: tb, Min: 1, Max: cfg.Ways - 1},
		},
		controller.Config{EpochAccesses: cfg.EpochAccesses, MinGainHits: cfg.MinGainHits})
	if err != nil {
		return nil, err
	}
	sys.SetAccessObserver(ctl)
	return ctl, nil
}

// runOf summarizes a finished machine.
func runOf(label string, sys *memsys.System) AdaptiveRun {
	st := sys.Stats()
	return AdaptiveRun{
		Label:    label,
		Accesses: st.Cache.Accesses,
		Misses:   st.Cache.Misses,
		MissRate: st.Cache.MissRate(),
		CPI:      st.CPI(),
		Remaps:   sys.Tints().Remaps(),
	}
}

// RunAdaptive produces the full dataset.
func RunAdaptive(cfg AdaptiveConfig) (*AdaptiveData, error) {
	if cfg.Ways < 4 {
		return nil, fmt.Errorf("experiments: adaptive needs ≥4 ways, got %d", cfg.Ways)
	}
	prog := synth.PhaseShift(0, cfg.RegionBytes, cfg.Phases, cfg.Passes, cfg.Touches, cfg.LineBytes, 1)
	regionA, regionB := prog.MustVar("phaseA"), prog.MustVar("phaseB")

	mpegProg := mpeg.Idct(cfg.MPEG)
	gzipProg := gzipsim.Job(cfg.Gzip, 1<<32)

	type result struct {
		run       AdaptiveRun
		decisions []controller.Decision
	}
	// Every grid point is an independent machine: the static splits of both
	// scenarios plus the two adaptive runs all fan out together. split is
	// the columns of the first tint (phaseA / mpeg); 0 means adaptive.
	type point struct {
		corun bool
		split int
	}
	var grid []point
	for _, corun := range []bool{false, true} {
		for split := 0; split < cfg.Ways; split++ {
			grid = append(grid, point{corun, split})
		}
	}
	results, err := sweepMap(grid, func(p point, _ int) (result, error) {
		sys, err := newAdaptiveSystem(cfg)
		if err != nil {
			return result{}, err
		}
		var (
			ctl   *controller.Controller
			label string
		)
		firstRegion, secondRegion := regionA, regionB
		if p.corun {
			base, size := jobSpan(mpegProg)
			firstRegion = memory.Region{Name: "mpeg", Base: base, Size: size}
			base, size = jobSpan(gzipProg)
			secondRegion = memory.Region{Name: "gzip", Base: base, Size: size}
		}
		if p.split == 0 {
			label = "adaptive"
			if ctl, err = attachController(sys, cfg, firstRegion, secondRegion); err != nil {
				return result{}, err
			}
		} else {
			label = fmt.Sprintf("static %d+%d", p.split, cfg.Ways-p.split)
			if _, err := sys.MapRegion(firstRegion, replacement.Range(0, p.split)); err != nil {
				return result{}, err
			}
			if _, err := sys.MapRegion(secondRegion, replacement.Range(p.split, cfg.Ways)); err != nil {
				return result{}, err
			}
		}
		if p.corun {
			rr, err := sched.NewRoundRobin(sys, cfg.CoRunQuantum)
			if err != nil {
				return result{}, err
			}
			if err := rr.Add(&sched.Job{Name: "mpeg", Trace: mpegProg.Trace, TargetInstructions: cfg.CoRunTarget}); err != nil {
				return result{}, err
			}
			if err := rr.Add(&sched.Job{Name: "gzip", Trace: gzipProg.Trace, TargetInstructions: cfg.CoRunTarget}); err != nil {
				return result{}, err
			}
			rr.Run()
		} else {
			sys.Run(prog.Trace)
		}
		res := result{}
		if ctl != nil {
			ctl.FinishEpoch()
			res.decisions = ctl.Decisions()
		}
		res.run = runOf(label, sys)
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	data := &AdaptiveData{Config: cfg}
	half := len(grid) / 2
	for i, r := range results[:half] {
		if grid[i].split == 0 {
			data.PhaseAdaptive = r.run
			data.PhaseDecisions = r.decisions
		} else {
			data.PhaseStatic = append(data.PhaseStatic, r.run)
		}
	}
	for i, r := range results[half:] {
		if grid[half+i].split == 0 {
			data.CoRunAdaptive = r.run
			data.CoRunDecisions = r.decisions
		} else {
			data.CoRunStatic = append(data.CoRunStatic, r.run)
		}
	}
	return data, nil
}

// summaryTable renders one scenario's static sweep against its adaptive
// run, marking the best static split.
func summaryTable(title, firstTint string, static []AdaptiveRun, adaptive AdaptiveRun) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"allocation (" + firstTint + "+other)", "accesses", "miss rate", "CPI", "remaps"},
	}
	best := 0
	for i, r := range static {
		if r.MissRate < static[best].MissRate {
			best = i
		}
	}
	for i, r := range static {
		label := r.Label
		if i == best {
			label += " (best static)"
		}
		t.AddRow(label, fmt.Sprintf("%d", r.Accesses), fmt.Sprintf("%.2f%%", 100*r.MissRate),
			fmt.Sprintf("%.3f", r.CPI), fmt.Sprintf("%d", r.Remaps))
	}
	t.AddRow(adaptive.Label, fmt.Sprintf("%d", adaptive.Accesses), fmt.Sprintf("%.2f%%", 100*adaptive.MissRate),
		fmt.Sprintf("%.3f", adaptive.CPI), fmt.Sprintf("%d", adaptive.Remaps))
	return t
}

// decisionsTable renders the per-epoch controller log: allocations, per-tint
// miss rates and their deltas against the previous epoch, remap counts.
func decisionsTable(title string, decisions []controller.Decision) *Table {
	t := &Table{Title: title}
	if len(decisions) == 0 {
		t.Headers = []string{"epoch"}
		return t
	}
	t.Headers = []string{"epoch"}
	for _, te := range decisions[0].Tints {
		t.Headers = append(t.Headers, te.Name+" cols", te.Name+" miss", te.Name+" Δmiss")
	}
	t.Headers = append(t.Headers, "applied", "remaps")
	for i, d := range decisions {
		row := []string{fmt.Sprintf("%d", d.Epoch)}
		for j, te := range d.Tints {
			delta := te.MissRate
			if i > 0 && j < len(decisions[i-1].Tints) {
				delta = te.MissRate - decisions[i-1].Tints[j].MissRate
			}
			row = append(row,
				fmt.Sprintf("%d", te.Columns),
				fmt.Sprintf("%.1f%%", 100*te.MissRate),
				fmt.Sprintf("%+.1f%%", 100*delta))
		}
		applied := "-"
		if d.Applied {
			applied = "yes"
		}
		row = append(row, applied, fmt.Sprintf("%d", d.Remaps))
		t.AddRow(row...)
	}
	return t
}

// controllerSummaryTable compresses a long decision log to its outcome.
func controllerSummaryTable(title string, decisions []controller.Decision) *Table {
	t := &Table{Title: title, Headers: []string{"epochs", "remap decisions", "table writes", "final allocation"}}
	applied, writes := 0, 0
	final := "-"
	for _, d := range decisions {
		if d.Applied {
			applied++
		}
		writes += d.Remaps
		var s string
		for _, te := range d.Tints {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%d", te.Name, te.Columns)
		}
		final = s
	}
	t.AddRow(fmt.Sprintf("%d", len(decisions)), fmt.Sprintf("%d", applied), fmt.Sprintf("%d", writes), final)
	return t
}

// Tables renders the dataset for paperbench.
func (d *AdaptiveData) Tables() []*Table {
	return []*Table{
		summaryTable("Phase-shift workload: static splits vs adaptive controller", "phaseA", d.PhaseStatic, d.PhaseAdaptive),
		decisionsTable("Phase-shift adaptive decision log (per epoch)", d.PhaseDecisions),
		summaryTable("mpeg+gzip co-run: static splits vs adaptive controller", "mpeg", d.CoRunStatic, d.CoRunAdaptive),
		controllerSummaryTable("mpeg+gzip co-run controller summary", d.CoRunDecisions),
	}
}

// Verify checks the experiment's qualitative claims, returning violated
// expectations (empty = all hold).
func (d *AdaptiveData) Verify() []string {
	var problems []string
	if len(d.PhaseStatic) == 0 || len(d.CoRunStatic) == 0 {
		return []string{"adaptive: missing static sweeps"}
	}
	best := d.PhaseStatic[d.BestPhaseStatic()]
	if d.PhaseAdaptive.MissRate >= best.MissRate {
		problems = append(problems, fmt.Sprintf(
			"adaptive miss rate %.2f%% not below best static (%s, %.2f%%) on the phase workload",
			100*d.PhaseAdaptive.MissRate, best.Label, 100*best.MissRate))
	}
	if len(d.PhaseDecisions) < 2 {
		problems = append(problems, "adaptive: phase run logged fewer than 2 epochs")
	}
	appliedOne := false
	for _, dec := range d.PhaseDecisions {
		if dec.Applied {
			appliedOne = true
			break
		}
	}
	if !appliedOne {
		problems = append(problems, "adaptive: controller never remapped on the phase workload")
	}
	worst := d.CoRunStatic[0]
	for _, r := range d.CoRunStatic[1:] {
		if r.MissRate > worst.MissRate {
			worst = r
		}
	}
	if d.CoRunAdaptive.MissRate >= worst.MissRate {
		problems = append(problems, fmt.Sprintf(
			"adaptive co-run miss rate %.2f%% not below the worst static split (%s, %.2f%%)",
			100*d.CoRunAdaptive.MissRate, worst.Label, 100*worst.MissRate))
	}
	return problems
}
