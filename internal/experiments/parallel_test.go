package experiments

import (
	"errors"
	"reflect"
	"testing"
)

// TestParallelDeterminism checks the determinism guarantee behind the
// -jobs flag: every experiment must produce identical data at any worker
// count. The serial run (workers=1) is the reference; the wide run
// (workers=4) exercises the concurrent paths — including under -race,
// which matters on single-CPU machines where the default width is 1.
func TestParallelDeterminism(t *testing.T) {
	defer SetWorkers(0)

	fig5cfg := fig5TestConfig()
	fig5cfg.Quanta = []int64{1, 16384}
	fig5cfg.TargetInstructions = 1 << 17
	jitterCfg := DefaultJitterConfig
	jitterCfg.TargetInstructions = 1 << 16
	jitterCfg.Seeds = 3
	adaptiveCfg := adaptiveTestConfig()

	checks := []struct {
		name string
		run  func() (any, error)
	}{
		{"fig4", func() (any, error) { return RunFig4(DefaultFig4Config) }},
		{"fig5", func() (any, error) { return RunFig5(fig5cfg) }},
		{"policy", func() (any, error) { return RunPolicyAblation() }},
		{"missPenalty", func() (any, error) { return RunMissPenaltyAblation([]int{5, 40}) }},
		{"tlb", func() (any, error) { return RunTLBAblation([]int{8, 64}, 30) }},
		{"mask", func() (any, error) { return RunMaskGranularityAblation() }},
		{"writePolicy", func() (any, error) { return RunWritePolicyAblation() }},
		{"energy", func() (any, error) { return RunEnergyAblation() }},
		{"jitter", func() (any, error) { return RunJitter(jitterCfg) }},
		{"adaptive", func() (any, error) { return RunAdaptive(adaptiveCfg) }},
	}
	for _, c := range checks {
		t.Run(c.name, func(t *testing.T) {
			SetWorkers(1)
			serial, err := c.run()
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			SetWorkers(4)
			parallel, err := c.run()
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("results differ between 1 and 4 workers:\nserial:   %+v\nparallel: %+v", serial, parallel)
			}
		})
	}
}

// TestSetWorkersClamp checks the knob's edge cases.
func TestSetWorkersClamp(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(-5)
	if Workers() != 0 {
		t.Errorf("Workers() = %d after SetWorkers(-5), want 0", Workers())
	}
	SetWorkers(3)
	if Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", Workers())
	}
}

// TestSweepMapPropagatesErrors checks that an experiment error surfaces
// from the pool with the sweep point attached, at either width.
func TestSweepMapPropagatesErrors(t *testing.T) {
	defer SetWorkers(0)
	boom := errors.New("bad sweep point")
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		_, err := sweepMap([]int{1, 2, 3}, func(v, _ int) (int, error) {
			if v == 2 {
				return 0, boom
			}
			return v, nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: error = %v, want %v", workers, err, boom)
		}
	}
}
