package experiments

import (
	"fmt"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/replacement"
	"colcache/internal/sched"
	"colcache/internal/workloads"
	"colcache/internal/workloads/gzipsim"
)

// Fig5Config parameterizes the Figure 5 reproduction: three gzip jobs
// round-robin on one processor, job A's CPI measured as the context-switch
// quantum varies, for a standard cache and for a column cache where job A
// owns half the columns.
type Fig5Config struct {
	Gzip gzipsim.Config
	// CacheBytes lists the total cache sizes to sweep (paper: 16K, 128K).
	CacheBytes []int
	// Quanta are the context-switch time quanta in instructions.
	Quanta []int64
	// TargetInstructions is how many instructions each job executes.
	TargetInstructions int64
	LineBytes          int
	Ways               int
	// MappedColumnsForA is how many of the Ways columns the critical job
	// owns exclusively in the mapped configuration; the paper assigns job A
	// "a large fraction of the cache".
	MappedColumnsForA int
	PageBytes         int
	Timing            memsys.Timing
}

// DefaultFig5Config reproduces the paper's sweep. The quantum axis is the
// paper's 1..1M powers-of-4 series.
var DefaultFig5Config = Fig5Config{
	Gzip:               gzipsim.DefaultConfig,
	CacheBytes:         []int{16 * 1024, 128 * 1024},
	Quanta:             []int64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576},
	TargetInstructions: 1 << 20,
	LineBytes:          32,
	Ways:               4,
	MappedColumnsForA:  3,
	PageBytes:          4096,
	Timing:             memsys.DefaultTiming,
}

// Fig5Point is one measurement: job A's cycles and memory-system energy per
// instruction at one quantum — the two currencies the Figure 4 sweep also
// reports.
type Fig5Point struct {
	Quantum int64
	CPI     float64
	EPI     float64 // picojoules per instruction
}

// Fig5Curve is one of the figure's four curves.
type Fig5Curve struct {
	CacheBytes int
	Mapped     bool // true = job A owns half the columns
	Points     []Fig5Point
}

// Label names the curve as in the paper's legend.
func (c Fig5Curve) Label() string {
	l := fmt.Sprintf("gzip.%dk", c.CacheBytes/1024)
	if c.Mapped {
		l += " mapped"
	}
	return l
}

// Fig5Data is the full dataset.
type Fig5Data struct {
	Config Fig5Config
	Curves []Fig5Curve
}

// jobSpan returns the address range that covers every variable of a job.
func jobSpan(p *workloads.Program) (base memory.Addr, size uint64) {
	base = p.Vars[0].Base
	end := p.Vars[0].End()
	for _, r := range p.Vars[1:] {
		if r.Base < base {
			base = r.Base
		}
		if r.End() > end {
			end = r.End()
		}
	}
	return base, end - base
}

// RunFig5 produces the Figure 5 dataset.
func RunFig5(cfg Fig5Config) (*Fig5Data, error) {
	if cfg.Ways < 2 {
		return nil, fmt.Errorf("experiments: fig5 needs ≥2 ways to partition, got %d", cfg.Ways)
	}
	// Three compression jobs over different data, in disjoint address
	// spaces, generated once and reused across all machine configurations.
	jobs := make([]*workloads.Program, 3)
	for i := range jobs {
		g := cfg.Gzip
		g.Seed = cfg.Gzip.Seed + int64(i)
		jobs[i] = gzipsim.Job(g, memory.Addr(i)<<32)
	}

	// Every (cache size, mapping, quantum) point is an independent
	// machine; fan the whole grid out and assemble the curves in order
	// afterwards. The job programs are shared read-only: the scheduler
	// keeps per-run positions in its own sched.Job structs.
	type point struct {
		cacheBytes int
		mapped     bool
		quantum    int64
	}
	var grid []point
	for _, cacheBytes := range cfg.CacheBytes {
		for _, mapped := range []bool{false, true} {
			for _, q := range cfg.Quanta {
				grid = append(grid, point{cacheBytes, mapped, q})
			}
		}
	}
	type measure struct {
		cpi, epi float64
	}
	points, err := sweepMap(grid, func(p point, _ int) (measure, error) {
		sys, err := memsys.New(memsys.Config{
			Geometry: memory.MustGeometry(cfg.LineBytes, cfg.PageBytes),
			Cache: cache.Config{
				LineBytes: cfg.LineBytes,
				NumSets:   p.cacheBytes / (cfg.LineBytes * cfg.Ways),
				NumWays:   cfg.Ways,
			},
			Timing: cfg.Timing,
		})
		if err != nil {
			return measure{}, err
		}
		if p.mapped {
			// Job A is critical: it exclusively owns a large fraction of
			// the columns; B and C share the rest.
			own := cfg.MappedColumnsForA
			if own < 1 || own >= cfg.Ways {
				own = cfg.Ways / 2
			}
			aMask := replacement.Range(0, own)
			bcMask := replacement.Range(own, cfg.Ways)
			base, size := jobSpan(jobs[0])
			if _, err := sys.MapRegion(memory.Region{Name: "jobA", Base: base, Size: size}, aMask); err != nil {
				return measure{}, err
			}
			for i := 1; i < 3; i++ {
				base, size := jobSpan(jobs[i])
				if _, err := sys.MapRegion(memory.Region{Name: fmt.Sprintf("job%c", 'A'+i), Base: base, Size: size}, bcMask); err != nil {
					return measure{}, err
				}
			}
		}
		rr, err := sched.NewRoundRobin(sys, p.quantum)
		if err != nil {
			return measure{}, err
		}
		for i, prog := range jobs {
			if err := rr.Add(&sched.Job{
				Name:               fmt.Sprintf("job%c", 'A'+i),
				Trace:              prog.Trace,
				TargetInstructions: cfg.TargetInstructions,
			}); err != nil {
				return measure{}, err
			}
		}
		jobA := rr.Run()[0]
		return measure{cpi: jobA.CPI(), epi: jobA.EPI()}, nil
	})
	if err != nil {
		return nil, err
	}

	data := &Fig5Data{Config: cfg}
	for i := 0; i < len(grid); i += len(cfg.Quanta) {
		curve := Fig5Curve{CacheBytes: grid[i].cacheBytes, Mapped: grid[i].mapped}
		for j, q := range cfg.Quanta {
			curve.Points = append(curve.Points, Fig5Point{Quantum: q, CPI: points[i+j].cpi, EPI: points[i+j].epi})
		}
		data.Curves = append(data.Curves, curve)
	}
	return data, nil
}

// Table renders the dataset as the paper's figure: one row per quantum, one
// column per curve.
func (d *Fig5Data) Table() *Table {
	t := &Table{
		Title:   "Figure 5: job A CPI vs context-switch time quantum",
		Headers: []string{"quantum"},
	}
	for _, c := range d.Curves {
		t.Headers = append(t.Headers, c.Label())
	}
	for qi, q := range d.Config.Quanta {
		row := []string{fmt.Sprintf("%d", q)}
		for _, c := range d.Curves {
			row = append(row, fmt.Sprintf("%.3f", c.Points[qi].CPI))
		}
		t.AddRow(row...)
	}
	return t
}

// EnergyTable renders the same grid in the second currency: job A's
// memory-system energy per instruction (picojoules).
func (d *Fig5Data) EnergyTable() *Table {
	t := &Table{
		Title:   "Figure 5 (energy): job A pJ/instr vs context-switch time quantum",
		Headers: []string{"quantum"},
	}
	for _, c := range d.Curves {
		t.Headers = append(t.Headers, c.Label())
	}
	for qi, q := range d.Config.Quanta {
		row := []string{fmt.Sprintf("%d", q)}
		for _, c := range d.Curves {
			row = append(row, fmt.Sprintf("%.1f", c.Points[qi].EPI))
		}
		t.AddRow(row...)
	}
	return t
}

// Verify checks the paper's qualitative claims, returning violated
// expectations (empty = shape reproduced).
func (d *Fig5Data) Verify() []string {
	var problems []string
	find := func(bytes int, mapped bool) *Fig5Curve {
		for i := range d.Curves {
			if d.Curves[i].CacheBytes == bytes && d.Curves[i].Mapped == mapped {
				return &d.Curves[i]
			}
		}
		return nil
	}
	span := func(c *Fig5Curve) float64 {
		lo, hi := c.Points[0].CPI, c.Points[0].CPI
		for _, p := range c.Points {
			if p.CPI < lo {
				lo = p.CPI
			}
			if p.CPI > hi {
				hi = p.CPI
			}
		}
		return hi - lo
	}
	for _, bytes := range d.Config.CacheBytes {
		std, mapped := find(bytes, false), find(bytes, true)
		if std == nil || mapped == nil {
			problems = append(problems, fmt.Sprintf("%dK curves missing", bytes/1024))
			continue
		}
		n := len(std.Points)
		// Standard cache: CPI at the smallest quantum is significantly worse
		// than at the largest (batch).
		if std.Points[0].CPI <= std.Points[n-1].CPI {
			problems = append(problems, fmt.Sprintf("gzip.%dk: small-quantum CPI not worse than batch", bytes/1024))
		}
		// Mapped: better than standard at the smallest quantum — in both
		// currencies, since the avoided misses are also avoided DRAM energy.
		if mapped.Points[0].CPI >= std.Points[0].CPI {
			problems = append(problems, fmt.Sprintf("gzip.%dk mapped: no improvement at small quantum", bytes/1024))
		}
		if mapped.Points[0].EPI >= std.Points[0].EPI {
			problems = append(problems, fmt.Sprintf("gzip.%dk mapped: no energy improvement at small quantum", bytes/1024))
		}
		// Mapped: much less variation across quanta than standard.
		if span(mapped) >= span(std)/2 {
			problems = append(problems, fmt.Sprintf("gzip.%dk mapped: CPI variation %.3f not well below standard's %.3f",
				bytes/1024, span(mapped), span(std)))
		}
		// Standard and mapped converge at very large quanta (batch).
		diff := std.Points[n-1].CPI - mapped.Points[n-1].CPI
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.35 {
			problems = append(problems, fmt.Sprintf("gzip.%dk: curves do not converge at batch (Δ=%.3f)", bytes/1024, diff))
		}
	}
	// Larger cache lowers CPI across the board.
	if len(d.Config.CacheBytes) >= 2 {
		small := find(d.Config.CacheBytes[0], false)
		big := find(d.Config.CacheBytes[1], false)
		if small != nil && big != nil && big.Points[0].CPI >= small.Points[0].CPI {
			problems = append(problems, "larger cache did not lower standard CPI")
		}
	}
	return problems
}
