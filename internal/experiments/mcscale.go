package experiments

import (
	"fmt"
	"runtime"
	"time"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/multicore"
	"colcache/internal/workloads/mpeg"
)

// Multicore stepper throughput: how fast the deterministic cycle-interleaved
// stepper simulates as the core count grows. The stepper is serial by design
// (determinism), so simulated cycles per wall-clock second should stay
// roughly flat per access while total simulated work scales with cores —
// this is the scaling record CI tracks, not a correctness experiment.

// ScalingResult is one core count's throughput measurement.
type ScalingResult struct {
	Cores        int     `json:"cores"`
	Accesses     int64   `json:"accesses"`     // total trace accesses simulated
	SimCycles    int64   `json:"simCycles"`    // makespan of the co-run
	WallSeconds  float64 `json:"wallSeconds"`  // host time for the Run
	CyclesPerSec float64 `json:"cyclesPerSec"` // SimCycles / WallSeconds
}

// scalingTrace builds core i's benchmark trace: the idct reference stream
// (per-core seed) tiled to the requested length in a disjoint 4GB address
// window.
func scalingTrace(i, accesses int) memtrace.Trace {
	cfg := mpeg.DefaultConfig
	cfg.Seed = int64(i + 1)
	base := mpeg.Idct(cfg).Trace
	tr := make(memtrace.Trace, accesses)
	shift := uint64(i) << 32
	for k := range tr {
		tr[k] = base[k%len(base)]
		tr[k].Addr += shift
	}
	return tr
}

// RunMulticoreScaling measures stepper throughput at each core count. Every
// core replays the same idct trace (per-core seeds, disjoint 4GB address
// windows) so the per-core work is identical across machine sizes.
func RunMulticoreScaling(coreCounts []int, accessesPerCore int) ([]ScalingResult, error) {
	var out []ScalingResult
	for _, n := range coreCounts {
		if n < 1 {
			return nil, fmt.Errorf("experiments: scaling needs ≥1 core, got %d", n)
		}
		traces := make([]memtrace.Trace, n)
		for i := range traces {
			traces[i] = scalingTrace(i, accessesPerCore)
		}
		m, err := multicore.New(multicore.Config{
			Geometry:    memory.MustGeometry(32, 4096),
			L1:          cache.Config{LineBytes: 32, NumSets: 16, NumWays: 2},
			L2:          cache.Config{LineBytes: 32, NumSets: 64, NumWays: 8},
			Timing:      memsys.DefaultTiming,
			L2HitCycles: 6,
			Traces:      traces,
		})
		if err != nil {
			return nil, err
		}
		// Trace construction above allocates tens of megabytes; collect now so
		// a background mark phase does not steal CPU inside the timed window.
		runtime.GC()
		start := time.Now()
		if err := m.Run(); err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()
		st := m.Stats()
		r := ScalingResult{
			Cores:       n,
			Accesses:    int64(n) * int64(accessesPerCore),
			SimCycles:   st.Cycles,
			WallSeconds: wall,
		}
		if wall > 0 {
			r.CyclesPerSec = float64(r.SimCycles) / wall
		}
		out = append(out, r)
	}
	return out, nil
}

// ScalingTable renders the scaling sweep.
func ScalingTable(rows []ScalingResult) *Table {
	t := &Table{
		Title:   "Multicore stepper throughput",
		Headers: []string{"cores", "accesses", "sim cycles", "wall s", "sim cycles/s"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Cores), fmt.Sprintf("%d", r.Accesses),
			fmt.Sprintf("%d", r.SimCycles), fmt.Sprintf("%.3f", r.WallSeconds),
			fmt.Sprintf("%.0f", r.CyclesPerSec))
	}
	return t
}
