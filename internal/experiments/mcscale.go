package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"colcache/internal/cache"
	"colcache/internal/inspect"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/multicore"
	"colcache/internal/workloads/mpeg"
)

// Multicore stepper throughput: how fast the machine simulates as the core
// count grows, for both steppers. The serial stepper arbitrates every single
// access (an O(cores) scan per access), so its throughput falls as cores are
// added; the epoch-parallel stepper (multicore.RunParallel) executes each
// core's window in a tight private loop and pays arbitration only per
// buffered bus record, producing bit-identical results at a fraction of the
// cost — plus host-parallel lookahead on multicore machines. Both rows are
// the scaling record CI tracks, not a correctness experiment.

// ScalingResult is one core count's throughput measurement.
type ScalingResult struct {
	Cores        int     `json:"cores"`
	Parallel     bool    `json:"parallel,omitempty"`     // measured with the epoch-parallel stepper
	EpochCycles  int64   `json:"epochCycles,omitempty"`  // epoch length K used when Parallel
	InspectEvery int64   `json:"inspectEvery,omitempty"` // frame-capture stride when inspected
	Accesses     int64   `json:"accesses"`               // total trace accesses simulated
	SimCycles    int64   `json:"simCycles"`              // makespan of the co-run
	WallSeconds  float64 `json:"wallSeconds"`            // host time for the Run
	CyclesPerSec float64 `json:"cyclesPerSec"`           // SimCycles / WallSeconds
}

// scalingTrace builds core i's benchmark trace: the idct reference stream
// (per-core seed) tiled to the requested length in a disjoint 4GB address
// window.
func scalingTrace(i, accesses int) memtrace.Trace {
	cfg := mpeg.DefaultConfig
	cfg.Seed = int64(i + 1)
	base := mpeg.Idct(cfg).Trace
	tr := make(memtrace.Trace, accesses)
	shift := uint64(i) << 32
	for k := range tr {
		tr[k] = base[k%len(base)]
		tr[k].Addr += shift
	}
	return tr
}

// RunMulticoreScaling measures serial-stepper throughput at each core count.
// Every core replays the same idct trace (per-core seeds, disjoint 4GB
// address windows) so the per-core work is identical across machine sizes.
func RunMulticoreScaling(coreCounts []int, accessesPerCore int) ([]ScalingResult, error) {
	return runScaling(coreCounts, accessesPerCore, false, 0)
}

// RunMulticoreScalingParallel measures the same workload through the
// epoch-parallel stepper with the given epoch length (0 picks
// multicore.DefaultEpochCycles). Results are bit-identical to the serial
// stepper's; only the wall clock differs.
func RunMulticoreScalingParallel(coreCounts []int, accessesPerCore int, epochCycles int64) ([]ScalingResult, error) {
	if epochCycles <= 0 {
		epochCycles = multicore.DefaultEpochCycles
	}
	return runScaling(coreCounts, accessesPerCore, true, epochCycles)
}

func runScaling(coreCounts []int, accessesPerCore int, parallel bool, epochCycles int64) ([]ScalingResult, error) {
	var out []ScalingResult
	for _, n := range coreCounts {
		if n < 1 {
			return nil, fmt.Errorf("experiments: scaling needs ≥1 core, got %d", n)
		}
		traces := make([]memtrace.Trace, n)
		for i := range traces {
			traces[i] = scalingTrace(i, accessesPerCore)
		}
		m, err := multicore.New(multicore.Config{
			Geometry:    memory.MustGeometry(32, 4096),
			L1:          cache.Config{LineBytes: 32, NumSets: 16, NumWays: 2},
			L2:          cache.Config{LineBytes: 32, NumSets: 64, NumWays: 8},
			Timing:      memsys.DefaultTiming,
			L2HitCycles: 6,
			Traces:      traces,
		})
		if err != nil {
			return nil, err
		}
		// Trace construction above allocates tens of megabytes; collect now so
		// a background mark phase does not steal CPU inside the timed window.
		runtime.GC()
		start := time.Now()
		if parallel {
			err = m.RunParallel(epochCycles)
		} else {
			err = m.Run()
		}
		if err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()
		st := m.Stats()
		r := ScalingResult{
			Cores:       n,
			Accesses:    int64(n) * int64(accessesPerCore),
			SimCycles:   st.Cycles,
			WallSeconds: wall,
		}
		if parallel {
			r.Parallel = true
			r.EpochCycles = epochCycles
		}
		if wall > 0 {
			r.CyclesPerSec = float64(r.SimCycles) / wall
		}
		out = append(out, r)
	}
	return out, nil
}

// DefaultInspectStride is the frame-capture stride the inspect-on
// benchmark row uses, and the stride the service documentation recommends
// as a starting point. The stepper simulates tens of millions of accesses
// per second, so 64Ki accesses per frame still yields hundreds of frames
// per second — far beyond what a live heatmap needs — while amortizing
// the ~tens-of-microseconds capture (occupancy reduction + JSON encoding)
// to well under the 5% overhead budget the benchmark gates.
const DefaultInspectStride = 65536

// RunMulticoreScalingInspect measures the serial stepper with a live
// frame capture attached at the given stride (0 = DefaultInspectStride).
// The capture mirrors the service's inline cost — occupancy reduction
// into a reused frame plus JSON encoding — so the row gates the real
// overhead a colserved -inspect-every deployment pays.
func RunMulticoreScalingInspect(coreCounts []int, accessesPerCore int, every int64) ([]ScalingResult, error) {
	if every <= 0 {
		every = DefaultInspectStride
	}
	var out []ScalingResult
	for _, n := range coreCounts {
		if n < 1 {
			return nil, fmt.Errorf("experiments: scaling needs ≥1 core, got %d", n)
		}
		traces := make([]memtrace.Trace, n)
		for i := range traces {
			traces[i] = scalingTrace(i, accessesPerCore)
		}
		m, err := multicore.New(multicore.Config{
			Geometry:    memory.MustGeometry(32, 4096),
			L1:          cache.Config{LineBytes: 32, NumSets: 16, NumWays: 2},
			L2:          cache.Config{LineBytes: 32, NumSets: 64, NumWays: 8},
			Timing:      memsys.DefaultTiming,
			L2HitCycles: 6,
			Traces:      traces,
		})
		if err != nil {
			return nil, err
		}
		red := inspect.NewMachineReducer(m, inspect.WindowOwner(n, 32))
		var frame inspect.Frame
		var encoded int64
		m.SetInspector(every, func(done int64) {
			red.Reduce(&frame, done, false)
			if b, err := json.Marshal(&frame); err == nil {
				encoded += int64(len(b))
			}
		})
		runtime.GC()
		start := time.Now()
		if err := m.RunContext(context.Background(), 0, nil); err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()
		if encoded == 0 {
			return nil, fmt.Errorf("experiments: inspect row captured no frames")
		}
		st := m.Stats()
		r := ScalingResult{
			Cores:        n,
			InspectEvery: every,
			Accesses:     int64(n) * int64(accessesPerCore),
			SimCycles:    st.Cycles,
			WallSeconds:  wall,
		}
		if wall > 0 {
			r.CyclesPerSec = float64(r.SimCycles) / wall
		}
		out = append(out, r)
	}
	return out, nil
}

// ScalingTable renders the scaling sweep.
func ScalingTable(rows []ScalingResult) *Table {
	t := &Table{
		Title:   "Multicore stepper throughput",
		Headers: []string{"stepper", "cores", "accesses", "sim cycles", "wall s", "sim cycles/s"},
	}
	for _, r := range rows {
		stepper := "serial"
		if r.Parallel {
			stepper = fmt.Sprintf("epoch K=%d", r.EpochCycles)
		} else if r.InspectEvery > 0 {
			stepper = fmt.Sprintf("inspect K=%d", r.InspectEvery)
		}
		t.AddRow(stepper, fmt.Sprintf("%d", r.Cores), fmt.Sprintf("%d", r.Accesses),
			fmt.Sprintf("%d", r.SimCycles), fmt.Sprintf("%.3f", r.WallSeconds),
			fmt.Sprintf("%.0f", r.CyclesPerSec))
	}
	return t
}
