package experiments

import (
	"strings"
	"testing"
)

// multicoreTestConfig is the default co-run: shortening it erases the
// re-touch passes that carry the interference signal, and the full run takes
// well under a second.
func multicoreTestConfig() MulticoreConfig {
	return DefaultMulticoreConfig
}

func TestRunMulticoreShapes(t *testing.T) {
	data, err := RunMulticore(multicoreTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if problems := data.Verify(); len(problems) != 0 {
		t.Fatalf("shape checks failed: %v", problems)
	}
	if len(data.Static) != data.Config.L2Ways-1 {
		t.Errorf("static sweep has %d points, want %d", len(data.Static), data.Config.L2Ways-1)
	}
	best := data.Static[data.BestStatic()]
	t.Logf("unpartitioned %.2f%%, best static %s %.2f%%, adaptive %.2f%% (remaps %d, %d epochs)",
		100*data.Unpartitioned.L2MissRate, best.Label, 100*best.L2MissRate,
		100*data.Adaptive.L2MissRate, data.Adaptive.Remaps, len(data.Decisions))
	// The disjoint co-run still drives real bus and L2 traffic.
	if data.Unpartitioned.Bus.Reads == 0 || data.Unpartitioned.L2Accesses == 0 {
		t.Error("degenerate run: no bus reads or L2 accesses")
	}
	// The static sweep's mpeg-side misses must respond to the split: giving
	// idct more columns cannot be worse than giving it one, measured at the
	// extremes of the sweep.
	if len(data.Static) >= 2 {
		first, last := data.Static[0], data.Static[len(data.Static)-1]
		if last.MPEGMisses > first.MPEGMisses {
			t.Errorf("mpeg misses grew with its columns: %d (1 col) -> %d (%d cols)",
				first.MPEGMisses, last.MPEGMisses, data.Config.L2Ways-1)
		}
	}
}

func TestMulticoreTables(t *testing.T) {
	data, err := RunMulticore(multicoreTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	tables := data.Tables()
	if len(tables) != 3 {
		t.Fatalf("Tables() = %d tables, want 3", len(tables))
	}
	var b strings.Builder
	for _, tab := range tables {
		if err := tab.Write(&b); err != nil {
			t.Fatal(err)
		}
	}
	out := b.String()
	for _, want := range []string{"unpartitioned", "best static", "adaptive", "BusRd"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}

func TestRunMulticoreRejectsBadConfig(t *testing.T) {
	cfg := multicoreTestConfig()
	cfg.L2Ways = 2
	if _, err := RunMulticore(cfg); err == nil {
		t.Error("L2Ways=2 accepted")
	}
}
