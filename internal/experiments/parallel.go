package experiments

import (
	"context"
	"sync/atomic"

	"colcache/internal/runner"
)

// The experiment inner sweeps (Figure 4 partitions, Figure 5 quantum grid,
// the ablations) fan out over independent sweep points, each building its
// own memsys.System; this file holds the package-wide worker-pool width
// they share. Results are always assembled in input order, so the tables
// are byte-identical at any width.

// numWorkers is the pool width: 0 means one worker per CPU, 1 means
// serial. Atomic so a caller may set it while experiments launched earlier
// are still running (paperbench sets it once at startup; tests toggle it).
var numWorkers atomic.Int64

// SetWorkers bounds the concurrency of every experiment in this package.
// n <= 0 restores the default (one worker per CPU); n == 1 reproduces the
// serial loops.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	numWorkers.Store(int64(n))
}

// Workers reports the current pool width; 0 means one worker per CPU.
func Workers() int { return int(numWorkers.Load()) }

// sweepMap fans fn out over jobs with the package worker setting,
// fail-fast, returning results in input order.
func sweepMap[In, Out any](jobs []In, fn func(job In, index int) (Out, error)) ([]Out, error) {
	return runner.Map(context.Background(), jobs,
		func(_ context.Context, job In, index int) (Out, error) { return fn(job, index) },
		runner.Options{Workers: Workers()})
}
