package experiments

import (
	"bytes"
	"strings"
	"testing"

	"colcache/internal/workloads/mpeg"
)

func TestFig4ReproducesPaperShapes(t *testing.T) {
	d, err := RunFig4(DefaultFig4Config)
	if err != nil {
		t.Fatal(err)
	}
	if problems := d.Verify(); len(problems) != 0 {
		t.Errorf("paper shape violations: %v", problems)
	}
	if len(d.Routines) != 3 {
		t.Fatalf("routines=%d", len(d.Routines))
	}
	// Monotone degradation for dequant and plus as cache grows.
	for _, name := range []string{"dequant", "plus"} {
		for _, r := range d.Routines {
			if r.Name != name {
				continue
			}
			for k := 1; k < len(r.Cycles); k++ {
				if r.Cycles[k] < r.Cycles[k-1] {
					t.Errorf("%s: cycles[%d]=%d < cycles[%d]=%d — not monotone",
						name, k, r.Cycles[k], k-1, r.Cycles[k-1])
				}
			}
		}
	}
	// idct's all-scratchpad point must be dramatically (>2x) worse than any
	// cached point.
	for _, r := range d.Routines {
		if r.Name != "idct" {
			continue
		}
		for k := 1; k < len(r.Cycles); k++ {
			if r.Cycles[0] < 2*r.Cycles[k] {
				t.Errorf("idct: uncached point %d not >2x cached point %d", r.Cycles[0], r.Cycles[k])
			}
		}
	}
	// The remap overhead must be tiny relative to the win.
	staticBest := d.Total[0]
	for _, c := range d.Total {
		if c < staticBest {
			staticBest = c
		}
	}
	if d.RemapOverheadCycles*10 > staticBest-d.Column+d.RemapOverheadCycles {
		t.Logf("note: remap overhead %d vs win %d", d.RemapOverheadCycles, staticBest-d.Column)
	}
}

func TestFig4Validation(t *testing.T) {
	cfg := DefaultFig4Config
	cfg.Columns = 0
	if _, err := RunFig4(cfg); err == nil {
		t.Error("zero columns accepted")
	}
}

func TestFig4Tables(t *testing.T) {
	d, err := RunFig4(DefaultFig4Config)
	if err != nil {
		t.Fatal(err)
	}
	tables := d.Tables()
	if len(tables) != 4 { // (a), (b), (c), (d)
		t.Fatalf("tables=%d want 4", len(tables))
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.Write(&buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, want := range []string{"dequant", "plus", "idct", "column cache (dynamic)"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q", want)
		}
	}
}

// fig5TestConfig trims the default sweep so the test stays fast while still
// covering the smallest and largest quanta where the shape claims live.
func fig5TestConfig() Fig5Config {
	cfg := DefaultFig5Config
	cfg.Quanta = []int64{1, 256, 16384, 1048576}
	cfg.TargetInstructions = 1 << 18
	return cfg
}

func TestFig5ReproducesPaperShapes(t *testing.T) {
	d, err := RunFig5(fig5TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if problems := d.Verify(); len(problems) != 0 {
		t.Errorf("paper shape violations: %v", problems)
	}
	if len(d.Curves) != 4 {
		t.Fatalf("curves=%d want 4", len(d.Curves))
	}
	// Every mapped curve must be nearly flat: max variation < 0.1 CPI.
	for _, c := range d.Curves {
		if !c.Mapped {
			continue
		}
		lo, hi := c.Points[0].CPI, c.Points[0].CPI
		for _, p := range c.Points {
			if p.CPI < lo {
				lo = p.CPI
			}
			if p.CPI > hi {
				hi = p.CPI
			}
		}
		if hi-lo > 0.1 {
			t.Errorf("%s: CPI varies %.3f across quanta", c.Label(), hi-lo)
		}
	}
}

func TestFig5Validation(t *testing.T) {
	cfg := fig5TestConfig()
	cfg.Ways = 1
	if _, err := RunFig5(cfg); err == nil {
		t.Error("1-way cache accepted for partitioning")
	}
}

func TestFig5TableAndLabels(t *testing.T) {
	cfg := fig5TestConfig()
	cfg.CacheBytes = []int{16 * 1024}
	cfg.Quanta = []int64{1, 1048576}
	d, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Table().Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "gzip.16k") || !strings.Contains(out, "gzip.16k mapped") {
		t.Errorf("table missing curve labels:\n%s", out)
	}
}

func TestPolicyAblationIsolationHoldsForAllPolicies(t *testing.T) {
	rows, err := RunPolicyAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.MappedCPI >= r.SharedCPI {
			t.Errorf("%s: mapping did not improve CPI (%.3f vs %.3f)",
				r.Policy, r.MappedCPI, r.SharedCPI)
		}
	}
	var buf bytes.Buffer
	if err := PolicyAblationTable(rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestMissPenaltyAblationPreservesOrdering(t *testing.T) {
	rows, err := RunMissPenaltyAblation([]int{5, 20, 80})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Scratchpad (k=0) remains optimal at every penalty.
		if _, best := r.Sweep.Best(); best != 0 {
			t.Errorf("penalty %d: optimum moved to %d cache columns", r.MissPenalty, best)
		}
	}
	// Gaps grow with penalty.
	gap := func(r MissPenaltyAblation) int64 {
		return r.Sweep.Cycles[len(r.Sweep.Cycles)-1] - r.Sweep.Cycles[0]
	}
	for i := 1; i < len(rows); i++ {
		if gap(rows[i]) <= gap(rows[i-1]) {
			t.Errorf("gap did not grow with penalty: %d then %d", gap(rows[i-1]), gap(rows[i]))
		}
	}
	var buf bytes.Buffer
	if err := MissPenaltyAblationTable(rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTLBAblation(t *testing.T) {
	rows, err := RunTLBAblation([]int{8, 64}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	small, big := rows[0], rows[1]
	if small.TLBHitRate >= big.TLBHitRate {
		t.Errorf("bigger TLB did not raise hit rate: %.3f vs %.3f", small.TLBHitRate, big.TLBHitRate)
	}
	if small.CPI <= big.CPI {
		t.Errorf("TLB misses did not cost cycles: %.3f vs %.3f", small.CPI, big.CPI)
	}
	// The cache's hit/miss pattern must be identical — the TLB only carries
	// mapping information, it does not change replacement.
	if small.CacheMisses != big.CacheMisses {
		t.Errorf("cache misses differ with TLB size: %d vs %d", small.CacheMisses, big.CacheMisses)
	}
	var buf bytes.Buffer
	if err := TLBAblationTable(rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestMaskGranularityAblation(t *testing.T) {
	rows, err := RunMaskGranularityAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	// Aggregating the streaming blocks into 2 columns is no worse than
	// confining them to 1.
	if rows[1].Cycles > rows[0].Cycles {
		t.Errorf("aggregation hurt: %d vs %d", rows[1].Cycles, rows[0].Cycles)
	}
	var buf bytes.Buffer
	if err := MaskGranularityAblationTable(rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTableWrite(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "long-header"}}
	tb.AddRow("xxxxxxx", "1")
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, row
		t.Fatalf("lines=%d: %q", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "a      ") {
		t.Errorf("header not padded: %q", lines[1])
	}
}

func TestWritePolicyAblation(t *testing.T) {
	rows, err := RunWritePolicyAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	wb, wt := rows[0], rows[1]
	// The hot bins coalesce under write-back: far fewer memory trips.
	if wb.Cycles >= wt.Cycles {
		t.Errorf("write-back (%d cycles) not faster than write-through (%d)", wb.Cycles, wt.Cycles)
	}
	if wb.Writebacks == 0 {
		t.Error("write-back produced no writebacks")
	}
	if wt.Writebacks != 0 {
		t.Errorf("write-through produced %d writebacks", wt.Writebacks)
	}
	var buf bytes.Buffer
	if err := WritePolicyAblationTable(rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineDynamicBeatsStatic(t *testing.T) {
	rows, decisions, err := RunPipelineDynamic(mpeg.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	unmanaged, static, dynamic := rows[0], rows[1], rows[2]
	// §3.2's claim: per-procedure remapping beats any single whole-program
	// assignment when procedures share variables with changing patterns.
	if dynamic.Cycles >= static.Cycles {
		t.Errorf("dynamic (%d) not better than static (%d)", dynamic.Cycles, static.Cycles)
	}
	// The remap overhead is tiny relative to the win.
	if dynamic.RemapWrites*10 > static.Cycles-dynamic.Cycles {
		t.Errorf("remap writes %d not small vs win %d",
			dynamic.RemapWrites, static.Cycles-dynamic.Cycles)
	}
	// Every phase has conflict-free per-phase layout and nonzero keep-cost
	// (the shared buffer's companions change per procedure).
	for _, d := range decisions {
		if d.PhaseCost != 0 {
			t.Errorf("phase %s not conflict-free alone: %d", d.Phase, d.PhaseCost)
		}
		if !d.Remap || d.KeepCost == 0 {
			t.Errorf("phase %s: remap=%v keep=%d — shared buffer should force remaps",
				d.Phase, d.Remap, d.KeepCost)
		}
	}
	// Honest scale note: the dynamic result must at least stay within a few
	// percent of the unmanaged LRU cache (isolation is free here).
	if float64(dynamic.Cycles) > 1.05*float64(unmanaged.Cycles) {
		t.Errorf("dynamic (%d) much worse than unmanaged (%d)", dynamic.Cycles, unmanaged.Cycles)
	}
	var buf bytes.Buffer
	if err := PipelineTable(rows, decisions).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := PipelineDecisionsTable(decisions).Write(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestFig4Golden pins the exact default-configuration cycle counts: the
// whole stack is deterministic, so any change to these numbers means a
// behavioural change in the simulator, the workloads or the layout
// algorithm, and deserves a deliberate update.
func TestFig4Golden(t *testing.T) {
	d, err := RunFig4(DefaultFig4Config)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string][]int64{
		"dequant": {4668, 4988, 5388, 5788, 5888},
		"plus":    {3104, 3424, 3744, 4064, 4384},
		"idct":    {252048, 78464, 78864, 79264, 79584},
	}
	for _, r := range d.Routines {
		want := golden[r.Name]
		for k, c := range r.Cycles {
			if c != want[k] {
				t.Errorf("%s cycles[%d]=%d, golden %d — simulator behaviour changed; "+
					"update the golden values if intentional", r.Name, k, c, want[k])
			}
		}
	}
	if d.Column != 86272 {
		t.Errorf("column result=%d, golden 86272", d.Column)
	}
}

func TestEnergyAblation(t *testing.T) {
	rows, err := RunEnergyAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	dq := rows[0]
	// For dequant (fits the pad), all-scratchpad is the energy optimum and
	// energy rises monotonically as columns become cache.
	for k := 1; k < len(dq.EnergyPJ); k++ {
		if dq.EnergyPJ[k] < dq.EnergyPJ[k-1] {
			t.Errorf("dequant energy not monotone at %d: %v", k, dq.EnergyPJ)
		}
	}
	// For idct, the all-scratchpad point pays main-memory energy on every
	// overflow access: dramatically worse than any cached point.
	id := rows[1]
	for k := 1; k < len(id.EnergyPJ); k++ {
		if id.EnergyPJ[0] < 2*id.EnergyPJ[k] {
			t.Errorf("idct all-scratch energy %d not >2x cached %d", id.EnergyPJ[0], id.EnergyPJ[k])
		}
	}
	var buf bytes.Buffer
	if err := EnergyAblationTable(rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
}
