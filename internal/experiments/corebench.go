package experiments

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
)

// Core benchmark: the regression record CI gates on (BENCH_CORE.json). Three
// measurements of the flat-state hot path:
//
//   - the serial multicore stepper's simulated-cycles-per-second at 1/2/4/8
//     cores, the same rows as BENCH_PR5.json so the two files compare
//     directly;
//   - the epoch-parallel stepper on the identical workload (bit-identical
//     results, different wall clock), so the speedup of buffered-epoch
//     execution over per-access arbitration is itself a gated number;
//   - the chunked binary-trace replay's accesses-per-second through memsys,
//     covering the decoder → batch → access pipeline.
//
// Every row is a best-of-Reps: wall-clock benchmarks on shared CI runners
// see multi-x noise from neighbors, and the maximum over a few repetitions
// estimates the machine's actual capability far more stably than a mean.

// minParallelAdvantage is the structural floor on the epoch stepper at the
// largest measured core count: parallel cycles/sec must beat the serial
// stepper by at least this factor. Even on a single-vCPU host (no lookahead
// overlap at all) eliminating the serial stepper's per-access O(cores)
// arbitration scan buys well over this; on real multicore hosts the margin
// is far larger. The floor catches the epoch stepper silently degrading to
// per-access serial execution without being tuned to any one machine — so
// it sits well below the ~1.45x a single-vCPU baseline measures, leaving
// room for scheduler noise on throttled shared runners that best-of-reps
// cannot fully absorb, while still failing hard on a true degradation
// (which lands at 1.0x or below).
const minParallelAdvantage = 1.05

// minInspectThroughput is the structural floor on the inspect-on row: the
// serial stepper with a frame capture attached at the default stride must
// keep at least this fraction of the uninstrumented serial stepper's
// throughput, measured in the same run on the same host. The capture is
// allocation-free at steady state and amortized over thousands of
// accesses per frame, so real degradations (per-access work leaking into
// the capture path, a stride bug firing every access) land far below it.
const minInspectThroughput = 0.95

// CoreBench is the committed benchmark snapshot.
type CoreBench struct {
	Reps            int             `json:"reps"`                      // repetitions per row; best kept
	Stepper         []ScalingResult `json:"stepper"`                   // serial rows, same shape as BENCH_PR5
	StepperParallel []ScalingResult `json:"stepperParallel,omitempty"` // epoch-parallel rows
	StepperInspect  []ScalingResult `json:"stepperInspect,omitempty"`  // serial + frame capture at the default stride
	// InspectOverheadRatio is the best paired inspect/serial throughput
	// ratio: each rep measures both steppers back to back and the maximum
	// ratio over reps is kept, so common-mode host noise (frequency
	// scaling, noisy neighbors) cancels out of the overhead gate.
	InspectOverheadRatio float64     `json:"inspectOverheadRatio,omitempty"`
	Replay               ReplayBench `json:"replay"`
}

// ReplayBench measures the streaming binary-replay pipeline.
type ReplayBench struct {
	Accesses       int64   `json:"accesses"`
	WallSeconds    float64 `json:"wallSeconds"`
	AccessesPerSec float64 `json:"accessesPerSec"`
}

// RunCoreBench measures the stepper at each core count and the streaming
// replay pipeline, keeping the best of reps repetitions per row.
func RunCoreBench(coreCounts []int, accessesPerCore, reps int) (*CoreBench, error) {
	if reps < 1 {
		reps = 1
	}
	out := &CoreBench{Reps: reps}
	for _, n := range coreCounts {
		var best ScalingResult
		for r := 0; r < reps; r++ {
			rows, err := RunMulticoreScaling([]int{n}, accessesPerCore)
			if err != nil {
				return nil, err
			}
			if rows[0].CyclesPerSec > best.CyclesPerSec {
				best = rows[0]
			}
		}
		out.Stepper = append(out.Stepper, best)
	}
	for _, n := range coreCounts {
		if n < 2 {
			continue // a 1-core machine falls back to the serial stepper
		}
		var best ScalingResult
		for r := 0; r < reps; r++ {
			rows, err := RunMulticoreScalingParallel([]int{n}, accessesPerCore, 0)
			if err != nil {
				return nil, err
			}
			if rows[0].CyclesPerSec > best.CyclesPerSec {
				best = rows[0]
			}
		}
		out.StepperParallel = append(out.StepperParallel, best)
	}
	// One inspect-on row at the largest core count: the capture overhead is
	// per-frame, not per-core, so one machine size gates it. The overhead
	// ratio is measured pairwise — an uninstrumented serial run immediately
	// before each inspect run — because on shared hosts the machine's speed
	// drifts by integer factors between rows, so comparing against the
	// separately-timed serial row above would gate host noise, not capture
	// cost. The best per-rep ratio is kept: noise only ever makes a pair
	// look worse, never better, so the maximum converges on the true ratio.
	// Each pair costs well under 100ms, so a higher floor of pairs buys the
	// ratio's stability for free.
	if n := coreCounts[len(coreCounts)-1]; n >= 1 {
		pairs := 2 * reps
		if pairs < 6 {
			pairs = 6
		}
		var best ScalingResult
		for r := 0; r < pairs; r++ {
			serRows, err := RunMulticoreScaling([]int{n}, accessesPerCore)
			if err != nil {
				return nil, err
			}
			insRows, err := RunMulticoreScalingInspect([]int{n}, accessesPerCore, 0)
			if err != nil {
				return nil, err
			}
			if insRows[0].CyclesPerSec > best.CyclesPerSec {
				best = insRows[0]
			}
			if ser := serRows[0].CyclesPerSec; ser > 0 {
				if ratio := insRows[0].CyclesPerSec / ser; ratio > out.InspectOverheadRatio {
					out.InspectOverheadRatio = ratio
				}
			}
		}
		out.StepperInspect = append(out.StepperInspect, best)
	}
	replay, err := runReplayBench(int64(accessesPerCore), reps)
	if err != nil {
		return nil, err
	}
	out.Replay = replay
	return out, nil
}

// runReplayBench streams an encoded idct-derived trace through memsys via
// the chunked decoder and reports the best accesses-per-second of reps runs.
func runReplayBench(accesses int64, reps int) (ReplayBench, error) {
	tr := scalingTrace(0, int(accesses))
	var buf bytes.Buffer
	if err := memtrace.WriteBinary(&buf, tr); err != nil {
		return ReplayBench{}, err
	}
	data := buf.Bytes()
	best := ReplayBench{Accesses: accesses}
	for r := 0; r < reps; r++ {
		sys, err := memsys.New(memsys.Config{
			Geometry: memory.MustGeometry(32, 4096),
			Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 2},
			Timing:   memsys.DefaultTiming,
		})
		if err != nil {
			return ReplayBench{}, err
		}
		start := time.Now()
		done, _, err := sys.Replay(context.Background(), memtrace.NewDecoder(bytes.NewReader(data)),
			memsys.ReplayOptions{})
		wall := time.Since(start).Seconds()
		if err != nil {
			return ReplayBench{}, err
		}
		if done != accesses {
			return ReplayBench{}, fmt.Errorf("experiments: replay bench ran %d of %d accesses", done, accesses)
		}
		if wall > 0 && float64(done)/wall > best.AccessesPerSec {
			best.WallSeconds = wall
			best.AccessesPerSec = float64(done) / wall
		}
	}
	return best, nil
}

// CompareCoreBench checks a fresh run against the committed baseline and
// returns one problem string per row whose throughput regressed by more
// than tolerance (a fraction: 0.25 fails below 75% of the baseline).
// Rows missing from either side are reported too — a gate that silently
// skips rows is not a gate.
func CompareCoreBench(current, baseline *CoreBench, tolerance float64) []string {
	problems := compareRows("serial", current.Stepper, baseline.Stepper, tolerance)
	problems = append(problems,
		compareRows("parallel", current.StepperParallel, baseline.StepperParallel, tolerance)...)
	if floor := baseline.Replay.AccessesPerSec * (1 - tolerance); current.Replay.AccessesPerSec < floor {
		problems = append(problems, fmt.Sprintf(
			"replay: %.0f accesses/sec is below the regression floor %.0f (baseline %.0f)",
			current.Replay.AccessesPerSec, floor, baseline.Replay.AccessesPerSec))
	}
	problems = append(problems, checkParallelAdvantage(current)...)
	problems = append(problems, checkInspectOverhead(current, baseline)...)
	return problems
}

// checkInspectOverhead enforces the inspect-on structural floor on the
// pairwise overhead ratio RunCoreBench measured (inspect and serial runs
// back to back within each pair, best ratio kept). Machine-relative and
// temporally adjacent, so it holds on noisy shared runners where comparing
// independently-timed rows cannot. The row's absolute throughput is NOT
// gated against the baseline: it is the serial row's throughput times
// this ratio, both of which are gated already, and the inspect row is
// measured last in the run — when a shared host has typically drifted
// furthest from the baseline's conditions — so an absolute floor on it
// would mostly gate that drift. A current run missing the ratio a
// baseline records still fails: a gate that silently skips rows is not a
// gate. Baselines from before the ratio existed are skipped.
func checkInspectOverhead(current, baseline *CoreBench) []string {
	if baseline.InspectOverheadRatio > 0 && current.InspectOverheadRatio <= 0 {
		return []string{"inspect: baseline records an overhead ratio but the current run measured none"}
	}
	if current.InspectOverheadRatio <= 0 {
		return nil
	}
	if current.InspectOverheadRatio < minInspectThroughput {
		return []string{fmt.Sprintf(
			"inspect: frame capture costs %.1f%% of paired serial throughput; floor is %.0f%%",
			100*(1-current.InspectOverheadRatio), 100*(1-minInspectThroughput))}
	}
	return nil
}

// compareRows gates one stepper's rows against its baseline rows by core
// count.
func compareRows(label string, current, baseline []ScalingResult, tolerance float64) []string {
	var problems []string
	base := make(map[int]ScalingResult, len(baseline))
	for _, r := range baseline {
		base[r.Cores] = r
	}
	seen := make(map[int]bool, len(current))
	for _, r := range current {
		seen[r.Cores] = true
		b, ok := base[r.Cores]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s cores=%d: no baseline row", label, r.Cores))
			continue
		}
		floor := b.CyclesPerSec * (1 - tolerance)
		if r.CyclesPerSec < floor {
			problems = append(problems, fmt.Sprintf(
				"%s cores=%d: %.0f cycles/sec is below the regression floor %.0f (baseline %.0f, tolerance %.0f%%)",
				label, r.Cores, r.CyclesPerSec, floor, b.CyclesPerSec, tolerance*100))
		}
	}
	for _, r := range baseline {
		if !seen[r.Cores] {
			problems = append(problems, fmt.Sprintf("%s cores=%d: baseline row not measured", label, r.Cores))
		}
	}
	return problems
}

// checkParallelAdvantage enforces the structural floor: at the largest core
// count measured by both steppers, the epoch-parallel stepper must beat the
// serial stepper by minParallelAdvantage. This is machine-relative (both
// numbers come from the same run on the same host), so it holds on noisy
// shared runners where absolute floors cannot.
func checkParallelAdvantage(cb *CoreBench) []string {
	serial := make(map[int]ScalingResult, len(cb.Stepper))
	for _, r := range cb.Stepper {
		serial[r.Cores] = r
	}
	best := -1
	for _, r := range cb.StepperParallel {
		if _, ok := serial[r.Cores]; ok && r.Cores > best {
			best = r.Cores
		}
	}
	if best < 2 {
		return nil
	}
	var par ScalingResult
	for _, r := range cb.StepperParallel {
		if r.Cores == best {
			par = r
		}
	}
	ser := serial[best]
	if ser.CyclesPerSec <= 0 {
		return nil
	}
	if ratio := par.CyclesPerSec / ser.CyclesPerSec; ratio < minParallelAdvantage {
		return []string{fmt.Sprintf(
			"parallel cores=%d: epoch stepper is only %.2fx the serial stepper (%.0f vs %.0f cycles/sec); structural floor is %.1fx",
			best, ratio, par.CyclesPerSec, ser.CyclesPerSec, minParallelAdvantage)}
	}
	return nil
}

// CoreBenchTable renders the snapshot.
func CoreBenchTable(cb *CoreBench) *Table {
	rows := append(append([]ScalingResult{}, cb.Stepper...), cb.StepperParallel...)
	rows = append(rows, cb.StepperInspect...)
	t := ScalingTable(rows)
	t.Title = fmt.Sprintf("Core benchmark (best of %d)", cb.Reps)
	t.AddRow("replay", "-", fmt.Sprintf("%d", cb.Replay.Accesses), "-",
		fmt.Sprintf("%.3f", cb.Replay.WallSeconds),
		fmt.Sprintf("%.0f acc/s", cb.Replay.AccessesPerSec))
	if cb.InspectOverheadRatio > 0 {
		t.AddRow("inspect/serial", "-", "-", "-", "-",
			fmt.Sprintf("%.2fx paired", cb.InspectOverheadRatio))
	}
	return t
}
