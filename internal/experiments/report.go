// Package experiments regenerates every figure of the paper's evaluation
// (§4): the scratchpad-versus-cache partition sweeps of Figure 4 and the
// multitasking quantum sweep of Figure 5, plus the ablations DESIGN.md calls
// out. Each experiment returns structured data and can render itself as the
// row/series table the paper reports.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple rows-and-columns report.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table, aligned, to w.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintf(w, "%s\n", line(t.Headers)); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintf(w, "%s\n", line(rule)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "%s\n", line(row)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
