package experiments

import (
	"context"

	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/runner"
)

// Spec-driven invocation: the serving layer (internal/service) and any
// future batch frontend describe an experiment as data — build a machine,
// run a trace — instead of calling a bespoke RunFigN function. RunSpecs is
// the shared executor: a bounded, cancelable fan-out whose per-point
// machinery (fresh System per job, ordered results, panic containment)
// matches what the figure experiments get from sweepMap.

// SpecJob is one self-contained simulation point.
type SpecJob struct {
	// Label names the point in results and error messages.
	Label string
	// Build constructs the machine and the trace to run through it. It is
	// called on the worker goroutine, so expensive trace synthesis
	// parallelizes with the other points.
	Build func() (*memsys.System, memtrace.Trace, error)
	// After, when non-nil, runs on the worker after the trace completes,
	// with the finished machine — the hook for composing a richer result
	// (per-tint stats, controller decisions) while the machine is hot.
	After func(sys *memsys.System, res *SpecResult) error
}

// SpecResult is one point's outcome.
type SpecResult struct {
	Label  string
	Cycles int64
	Stats  memsys.Stats
	// Extra carries whatever the job's After hook attached.
	Extra any
}

// RunSpecs executes every job on a bounded pool, honoring ctx cancellation
// inside each simulation loop (memsys.RunContext), and returns results in
// job order. workers <= 0 means one per CPU; checkEvery is the
// cancellation stride (0 = memsys.DefaultCheckEvery). progress, when
// non-nil, is called after each point completes. Fail-fast: the first
// failing point cancels the rest.
func RunSpecs(ctx context.Context, jobs []SpecJob, workers, checkEvery int, progress func(done, total int)) ([]SpecResult, error) {
	return runner.Map(ctx, jobs,
		func(ctx context.Context, job SpecJob, _ int) (SpecResult, error) {
			sys, tr, err := job.Build()
			if err != nil {
				return SpecResult{}, err
			}
			cycles, err := sys.RunContext(ctx, tr, memsys.RunOptions{CheckEvery: checkEvery})
			if err != nil {
				return SpecResult{}, err
			}
			res := SpecResult{Label: job.Label, Cycles: cycles, Stats: sys.Stats()}
			if job.After != nil {
				if err := job.After(sys, &res); err != nil {
					return SpecResult{}, err
				}
			}
			return res, nil
		},
		runner.Options{Workers: workers, Progress: progress})
}
