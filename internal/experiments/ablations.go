package experiments

import (
	"fmt"

	"colcache/internal/cache"
	"colcache/internal/layout"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/replacement"
	"colcache/internal/sched"
	"colcache/internal/vm"
	"colcache/internal/workloads"
	"colcache/internal/workloads/gzipsim"
	"colcache/internal/workloads/kernels"
	"colcache/internal/workloads/mpeg"
)

// Ablations for the design choices DESIGN.md calls out. Each returns both
// data and a rendered table.

// PolicyAblation measures partition isolation under every replacement
// policy: job A's CPI at a small quantum against a thrasher, mapped vs
// shared. Isolation is a property of the column mask, not the policy, so
// the mapped CPI should improve under every policy.
type PolicyAblation struct {
	Policy    replacement.Kind
	SharedCPI float64
	MappedCPI float64
}

// RunPolicyAblation sweeps the replacement policies.
func RunPolicyAblation() ([]PolicyAblation, error) {
	jobA := gzipsim.Job(gzipsim.Config{WindowBytes: 8 * 1024}, 0)
	jobB := gzipsim.Job(gzipsim.Config{WindowBytes: 8 * 1024, Seed: 2}, 1<<32)
	kinds := []replacement.Kind{replacement.LRU, replacement.TreePLRU, replacement.FIFO, replacement.Random}
	type point struct {
		kind   replacement.Kind
		mapped bool
	}
	var grid []point
	for _, kind := range kinds {
		for _, mapped := range []bool{false, true} {
			grid = append(grid, point{kind, mapped})
		}
	}
	cpis, err := sweepMap(grid, func(p point, _ int) (float64, error) {
		sys, err := memsys.New(memsys.Config{
			Geometry: memory.MustGeometry(32, 4096),
			Cache:    cache.Config{LineBytes: 32, NumSets: 128, NumWays: 4, Policy: p.kind},
			Timing:   memsys.DefaultTiming,
		})
		if err != nil {
			return 0, err
		}
		if p.mapped {
			base, size := jobSpan(jobA)
			if _, err := sys.MapRegion(memory.Region{Name: "A", Base: base, Size: size}, replacement.Range(0, 3)); err != nil {
				return 0, err
			}
			base, size = jobSpan(jobB)
			if _, err := sys.MapRegion(memory.Region{Name: "B", Base: base, Size: size}, replacement.Range(3, 4)); err != nil {
				return 0, err
			}
		}
		rr, err := sched.NewRoundRobin(sys, 64)
		if err != nil {
			return 0, err
		}
		rr.Add(&sched.Job{Name: "A", Trace: jobA.Trace, TargetInstructions: 1 << 18})
		rr.Add(&sched.Job{Name: "B", Trace: jobB.Trace, TargetInstructions: 1 << 18})
		return rr.Run()[0].CPI(), nil
	})
	if err != nil {
		return nil, err
	}
	var out []PolicyAblation
	for i, kind := range kinds {
		out = append(out, PolicyAblation{Policy: kind, SharedCPI: cpis[2*i], MappedCPI: cpis[2*i+1]})
	}
	return out, nil
}

// PolicyAblationTable renders the sweep.
func PolicyAblationTable(rows []PolicyAblation) *Table {
	t := &Table{
		Title:   "Ablation: partition isolation across replacement policies (job A CPI, quantum 64)",
		Headers: []string{"policy", "shared CPI", "mapped CPI", "improvement"},
	}
	for _, r := range rows {
		t.AddRow(string(r.Policy),
			fmt.Sprintf("%.3f", r.SharedCPI),
			fmt.Sprintf("%.3f", r.MappedCPI),
			fmt.Sprintf("%.1f%%", 100*(r.SharedCPI-r.MappedCPI)/r.SharedCPI))
	}
	return t
}

// MissPenaltyAblation reruns the Figure 4 dequant sweep under different
// main-memory latencies: the penalty scales the gaps but never reorders the
// partitions (scratchpad stays optimal).
type MissPenaltyAblation struct {
	MissPenalty int
	Sweep       RoutineSweep
}

// RunMissPenaltyAblation sweeps the miss penalty.
func RunMissPenaltyAblation(penalties []int) ([]MissPenaltyAblation, error) {
	prog := mpeg.Dequant(mpeg.DefaultConfig)
	columns := DefaultFig4Config.Columns
	type point struct {
		penalty, k int
	}
	var grid []point
	for _, pen := range penalties {
		for k := 0; k <= columns; k++ {
			grid = append(grid, point{pen, k})
		}
	}
	cycles, err := sweepMap(grid, func(p point, _ int) (int64, error) {
		cfg := DefaultFig4Config
		cfg.Timing.MissPenalty = p.penalty
		cfg.Timing.Uncached = p.penalty
		c, _, err := runPartition(cfg, prog, p.k)
		return c, err
	})
	if err != nil {
		return nil, err
	}
	var out []MissPenaltyAblation
	for i, pen := range penalties {
		sweep := RoutineSweep{Name: prog.Name, Cycles: cycles[i*(columns+1) : (i+1)*(columns+1)]}
		out = append(out, MissPenaltyAblation{MissPenalty: pen, Sweep: sweep})
	}
	return out, nil
}

// MissPenaltyAblationTable renders the sweep.
func MissPenaltyAblationTable(rows []MissPenaltyAblation) *Table {
	t := &Table{
		Title:   "Ablation: dequant partition sweep vs miss penalty (cycles)",
		Headers: []string{"miss penalty"},
	}
	if len(rows) > 0 {
		for k := range rows[0].Sweep.Cycles {
			t.Headers = append(t.Headers, fmt.Sprintf("%d cache cols", k))
		}
	}
	for _, r := range rows {
		row := []string{fmt.Sprintf("%d", r.MissPenalty)}
		for _, c := range r.Sweep.Cycles {
			row = append(row, fmt.Sprintf("%d", c))
		}
		t.AddRow(row...)
	}
	return t
}

// TLBAblation measures the cost of the TLB carrying the tint information:
// CPI of the idct workload across TLB sizes and walk penalties. The mapping
// mechanism rides on the TLB, so a too-small TLB taxes every access — but
// the hit/miss pattern of the cache is unchanged.
type TLBAblation struct {
	TLBEntries  int
	WalkPenalty int
	CPI         float64
	TLBHitRate  float64
	CacheMisses int64
}

// RunTLBAblation sweeps TLB reach.
func RunTLBAblation(entries []int, walkPenalty int) ([]TLBAblation, error) {
	prog := mpeg.Idct(mpeg.DefaultConfig)
	return sweepMap(entries, func(n, _ int) (TLBAblation, error) {
		timing := memsys.DefaultTiming
		timing.TLBMiss = walkPenalty
		sys, err := memsys.New(memsys.Config{
			Geometry: memory.MustGeometry(32, 64),
			Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
			TLB:      vm.TLBConfig{Entries: n, Ways: n},
			Timing:   timing,
		})
		if err != nil {
			return TLBAblation{}, err
		}
		sys.Run(prog.Trace)
		st := sys.Stats()
		return TLBAblation{
			TLBEntries:  n,
			WalkPenalty: walkPenalty,
			CPI:         st.CPI(),
			TLBHitRate:  st.TLB.HitRate(),
			CacheMisses: st.Cache.Misses,
		}, nil
	})
}

// TLBAblationTable renders the sweep.
func TLBAblationTable(rows []TLBAblation) *Table {
	t := &Table{
		Title:   "Ablation: TLB reach (idct workload, 64B pages)",
		Headers: []string{"TLB entries", "walk penalty", "CPI", "TLB hit rate", "cache misses"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.TLBEntries),
			fmt.Sprintf("%d", r.WalkPenalty),
			fmt.Sprintf("%.3f", r.CPI),
			fmt.Sprintf("%.2f%%", 100*r.TLBHitRate),
			fmt.Sprintf("%d", r.CacheMisses),
		)
	}
	return t
}

// MaskGranularityAblation compares single-column assignment (the paper's §3
// restriction) against multi-column partitions for the idct streaming data:
// aggregating columns recovers set-associativity within the partition.
type MaskGranularityAblation struct {
	Description string
	Cycles      int64
	Misses      int64
}

// RunMaskGranularityAblation compares partition shapes for idct.
func RunMaskGranularityAblation() ([]MaskGranularityAblation, error) {
	prog := mpeg.Idct(mpeg.DefaultConfig)
	cos := prog.MustVar("cos")
	tmp := prog.MustVar("tmp")
	blocks := prog.MustVar("blocks")

	type shape struct {
		desc  string
		masks [3]replacement.Mask // cos, tmp, blocks
	}
	shapes := []shape{
		{"one column each, blocks in 1", [3]replacement.Mask{replacement.Of(0), replacement.Of(1), replacement.Of(2)}},
		{"blocks aggregated into 2 columns", [3]replacement.Mask{replacement.Of(0), replacement.Of(1), replacement.Of(2, 3)}},
		{"no mapping (all columns for all)", [3]replacement.Mask{replacement.All(4), replacement.All(4), replacement.All(4)}},
	}
	return sweepMap(shapes, func(sh shape, _ int) (MaskGranularityAblation, error) {
		sys, err := memsys.New(memsys.Config{
			Geometry: memory.MustGeometry(32, 64),
			Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
			Timing:   memsys.DefaultTiming,
		})
		if err != nil {
			return MaskGranularityAblation{}, err
		}
		for i, r := range []memory.Region{cos, tmp, blocks} {
			if _, err := sys.MapRegion(r, sh.masks[i]); err != nil {
				return MaskGranularityAblation{}, err
			}
		}
		cycles := sys.Run(prog.Trace)
		return MaskGranularityAblation{
			Description: sh.desc,
			Cycles:      cycles,
			Misses:      sys.Stats().Cache.Misses,
		}, nil
	})
}

// MaskGranularityAblationTable renders the comparison.
func MaskGranularityAblationTable(rows []MaskGranularityAblation) *Table {
	t := &Table{
		Title:   "Ablation: column aggregation for idct (2KB cache)",
		Headers: []string{"partition shape", "cycles", "misses"},
	}
	for _, r := range rows {
		t.AddRow(r.Description, fmt.Sprintf("%d", r.Cycles), fmt.Sprintf("%d", r.Misses))
	}
	return t
}

// WritePolicyAblation compares write-back/allocate against
// write-through/no-allocate on a write-heavy kernel: with write-back, a
// reused output buffer coalesces stores in the cache and pays one writeback
// per line; write-through pays memory latency on every store miss and never
// caches store data.
type WritePolicyAblation struct {
	Policy     string
	Cycles     int64
	Writebacks int64
	MissRate   float64
}

// RunWritePolicyAblation measures both policies on the histogram kernel,
// whose bins are read-modify-write hot data.
func RunWritePolicyAblation() ([]WritePolicyAblation, error) {
	prog := kernels.Histogram(kernels.HistogramConfig{})
	policies := []cache.WritePolicy{cache.WriteBackAllocate, cache.WriteThroughNoAllocate}
	return sweepMap(policies, func(wp cache.WritePolicy, _ int) (WritePolicyAblation, error) {
		timing := memsys.DefaultTiming
		// Sustained stores cannot hide the bus trip under write-through.
		timing.WriteThroughStore = timing.MissPenalty / 2
		sys, err := memsys.New(memsys.Config{
			Geometry: memory.MustGeometry(32, 64),
			Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4, Write: wp},
			Timing:   timing,
		})
		if err != nil {
			return WritePolicyAblation{}, err
		}
		cycles := sys.Run(prog.Trace)
		// Flush so write-back's coalesced dirty lines are accounted.
		sys.FlushCache()
		st := sys.Stats()
		return WritePolicyAblation{
			Policy:     wp.String(),
			Cycles:     cycles,
			Writebacks: st.Cache.Writebacks,
			MissRate:   st.Cache.MissRate(),
		}, nil
	})
}

// WritePolicyAblationTable renders the comparison.
func WritePolicyAblationTable(rows []WritePolicyAblation) *Table {
	t := &Table{
		Title:   "Ablation: write policy (histogram kernel, read-modify-write bins)",
		Headers: []string{"policy", "cycles", "writebacks", "miss rate"},
	}
	for _, r := range rows {
		t.AddRow(r.Policy, fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%d", r.Writebacks), fmt.Sprintf("%.2f%%", 100*r.MissRate))
	}
	return t
}

// EnergyAblation reruns the Figure 4 partition sweep reporting energy: the
// classic embedded result (and half the motivation for scratchpads in §5.2's
// power literature) is that scratchpad accesses cost a fraction of cache
// accesses, so energy favors scratchpad even harder than cycles do.
type EnergyAblation struct {
	Routine  string
	EnergyPJ []int64 // index = cache columns, as in RoutineSweep
}

// RunEnergyAblation sweeps the dequant and idct partitions, in picojoules.
func RunEnergyAblation() ([]EnergyAblation, error) {
	cfg := DefaultFig4Config
	progs := []*workloads.Program{mpeg.Dequant(cfg.MPEG), mpeg.Idct(cfg.MPEG)}
	type point struct {
		prog *workloads.Program
		k    int
	}
	var grid []point
	for _, prog := range progs {
		for k := 0; k <= cfg.Columns; k++ {
			grid = append(grid, point{prog, k})
		}
	}
	energies, err := sweepMap(grid, func(p point, _ int) (int64, error) {
		scratchBytes := uint64(cfg.Columns-p.k) * uint64(cfg.ColumnBytes)
		ways := p.k
		if ways == 0 {
			ways = 1
		}
		sys, err := memsys.New(memsys.Config{
			Geometry: memory.MustGeometry(cfg.LineBytes, cfg.PageBytes),
			Cache: cache.Config{
				LineBytes: cfg.LineBytes,
				NumSets:   cfg.ColumnBytes / cfg.LineBytes,
				NumWays:   ways,
			},
			Timing:          cfg.Timing,
			ScratchpadBytes: scratchBytes,
		})
		if err != nil {
			return 0, err
		}
		plan, err := layout.Build(layout.Request{
			Trace: p.prog.Trace,
			Vars:  p.prog.Vars,
			Machine: layout.Machine{
				Columns:         p.k,
				ColumnBytes:     cfg.ColumnBytes,
				ScratchpadBytes: scratchBytes,
			},
		})
		if err != nil {
			return 0, err
		}
		if _, err := layout.Apply(plan, sys, 0); err != nil {
			return 0, err
		}
		sys.Run(p.prog.Trace)
		return sys.EnergyPJ(), nil
	})
	if err != nil {
		return nil, err
	}
	var out []EnergyAblation
	for i, prog := range progs {
		out = append(out, EnergyAblation{
			Routine:  prog.Name,
			EnergyPJ: energies[i*(cfg.Columns+1) : (i+1)*(cfg.Columns+1)],
		})
	}
	return out, nil
}

// EnergyAblationTable renders the sweep.
func EnergyAblationTable(rows []EnergyAblation) *Table {
	t := &Table{
		Title:   "Ablation: partition sweep in energy (picojoules)",
		Headers: []string{"routine"},
	}
	if len(rows) > 0 {
		for k := range rows[0].EnergyPJ {
			t.Headers = append(t.Headers, fmt.Sprintf("%d cache cols", k))
		}
	}
	for _, r := range rows {
		row := []string{r.Routine}
		for _, e := range r.EnergyPJ {
			row = append(row, fmt.Sprintf("%d", e))
		}
		t.AddRow(row...)
	}
	return t
}
