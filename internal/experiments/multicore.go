package experiments

import (
	"fmt"

	"colcache/internal/cache"
	"colcache/internal/controller"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/multicore"
	"colcache/internal/replacement"
	"colcache/internal/workloads/gzipsim"
	"colcache/internal/workloads/mpeg"
)

// The cross-core interference study: an MPEG idct and a gzip job run
// *concurrently* on two cores with private L1s over one shared L2 — the
// parallel sibling of the Figure 5 time-sliced co-run. gzip streams a
// working set much larger than the L2 through it; idct keeps a small
// reusable set that a shared LRU L2 cannot protect. The experiment measures
// the co-run under three shared-L2 regimes:
//
//   - unpartitioned: both cores replace anywhere (a conventional shared L2),
//   - static column splits: each core owns a fixed share of the L2 columns,
//   - adaptive: the PR 2 epoch controller steers the per-core column masks
//     from shadow-tag utility monitors while the co-run executes.
//
// The claim under test is the paper's isolation argument lifted to a
// multicore LLC: restricting the streaming core's columns must cut the
// co-run miss rate below the unpartitioned baseline, and the controller
// must find such a split on its own.

// MulticoreConfig parameterizes the interference study.
type MulticoreConfig struct {
	LineBytes   int
	PageBytes   int
	L1Sets      int
	L1Ways      int
	L2Sets      int
	L2Ways      int
	L2HitCycles int
	Timing      memsys.Timing

	MPEG mpeg.Config
	Gzip gzipsim.Config
	// GzipAccesses caps the gzip core's trace (0 = the full job).
	GzipAccesses int
	// MPEGAccesses tiles the idct trace cyclically to this many accesses.
	// gzip's misses make its cycle clock run ~4× faster per access, so the
	// idct core needs ~4× the accesses for the two traces to overlap in
	// simulated time — without overlap there is no interference to measure.
	MPEGAccesses int

	// Controller knobs for the adaptive regime.
	EpochAccesses int64
	MinGainHits   int64
}

// DefaultMulticoreConfig pairs 1KB private L1s with a 16KB 8-column shared
// L2. idct transforms 48 blocks — a ~6.5KB set it re-touches every pass,
// needing three of the 2KB L2 columns to stay resident. gzip streams its
// input, prev-chain and output arrays through the L2 (the pollution), while
// its capacity-sensitive reuse — the 2KB head table plus the recent window —
// fits comfortably in the five columns a good split leaves it.
var DefaultMulticoreConfig = MulticoreConfig{
	LineBytes:     32,
	PageBytes:     4096,
	L1Sets:        16,
	L1Ways:        2,
	L2Sets:        64,
	L2Ways:        8,
	L2HitCycles:   6,
	Timing:        memsys.DefaultTiming,
	MPEG:          mpeg.Config{IdctBlocks: 48},
	Gzip:          gzipsim.Config{WindowBytes: 8192, HashBits: 9},
	GzipAccesses:  120000,
	MPEGAccesses:  480000,
	EpochAccesses: 1024,
	MinGainHits:   16,
}

// MulticoreRun is one regime's whole-run measurement.
type MulticoreRun struct {
	Label      string
	L2Accesses int64
	L2Misses   int64
	L2MissRate float64
	MPEGMisses int64 // idct core's share of the L2 misses
	GzipMisses int64
	Cycles     int64 // makespan
	Remaps     int64 // L2 tint-table writes (adaptive: controller decisions)
	Bus        multicore.BusStats
}

// MulticoreData is the experiment's full dataset.
type MulticoreData struct {
	Config        MulticoreConfig
	Unpartitioned MulticoreRun
	Static        []MulticoreRun // one per split, mpeg = 1..L2Ways-1 columns
	Adaptive      MulticoreRun
	Decisions     []controller.Decision
}

// BestStatic returns the index of the lowest-miss-rate static split.
func (d *MulticoreData) BestStatic() int {
	best := 0
	for i, r := range d.Static {
		if r.L2MissRate < d.Static[best].L2MissRate {
			best = i
		}
	}
	return best
}

// newMulticoreMachine assembles the two-core machine for one regime.
func newMulticoreMachine(cfg MulticoreConfig) (*multicore.Machine, error) {
	mpegProg := mpeg.Idct(cfg.MPEG)
	gzipProg := gzipsim.Job(cfg.Gzip, 1<<32)
	mpegTrace, gzipTrace := mpegProg.Trace, gzipProg.Trace
	if cfg.GzipAccesses > 0 && len(gzipTrace) > cfg.GzipAccesses {
		gzipTrace = gzipTrace[:cfg.GzipAccesses]
	}
	if cfg.MPEGAccesses > 0 {
		tiled := make(memtrace.Trace, cfg.MPEGAccesses)
		for i := range tiled {
			tiled[i] = mpegTrace[i%len(mpegTrace)]
		}
		mpegTrace = tiled
	}
	return multicore.New(multicore.Config{
		Geometry:    memory.MustGeometry(cfg.LineBytes, cfg.PageBytes),
		L1:          cache.Config{LineBytes: cfg.LineBytes, NumSets: cfg.L1Sets, NumWays: cfg.L1Ways},
		L2:          cache.Config{LineBytes: cfg.LineBytes, NumSets: cfg.L2Sets, NumWays: cfg.L2Ways},
		Timing:      cfg.Timing,
		L2HitCycles: cfg.L2HitCycles,
		Traces:      []memtrace.Trace{mpegTrace, gzipTrace},
	})
}

// runMulticore executes one regime to completion and summarizes it.
func runMulticore(label string, m *multicore.Machine) (MulticoreRun, error) {
	if err := m.Run(); err != nil {
		return MulticoreRun{}, err
	}
	if err := m.CheckInvariants(); err != nil {
		return MulticoreRun{}, err
	}
	st := m.Stats()
	run := MulticoreRun{
		Label:      label,
		L2Accesses: st.L2.Accesses,
		L2Misses:   st.L2.Misses,
		L2MissRate: st.L2.MissRate(),
		MPEGMisses: st.Cores[0].L2Misses,
		GzipMisses: st.Cores[1].L2Misses,
		Cycles:     st.Cycles,
		Remaps:     m.L2Tints().Remaps(),
		Bus:        st.Bus,
	}
	return run, nil
}

// RunMulticore produces the full dataset.
func RunMulticore(cfg MulticoreConfig) (*MulticoreData, error) {
	if cfg.L2Ways < 4 {
		return nil, fmt.Errorf("experiments: multicore needs ≥4 L2 ways, got %d", cfg.L2Ways)
	}
	type result struct {
		run       MulticoreRun
		decisions []controller.Decision
	}
	// split is the idct core's L2 columns: -1 = unpartitioned, 0 = adaptive.
	var grid []int
	grid = append(grid, -1, 0)
	for split := 1; split < cfg.L2Ways; split++ {
		grid = append(grid, split)
	}
	results, err := sweepMap(grid, func(split int, _ int) (result, error) {
		m, err := newMulticoreMachine(cfg)
		if err != nil {
			return result{}, err
		}
		switch {
		case split < 0:
			run, err := runMulticore("unpartitioned", m)
			return result{run: run}, err
		case split == 0:
			ctl, err := controller.New(m.L2Tints(), cfg.L2Sets, cfg.LineBytes,
				[]controller.Spec{
					{ID: m.L2Tint(0), Min: 1, Max: cfg.L2Ways - 1},
					{ID: m.L2Tint(1), Min: 1, Max: cfg.L2Ways - 1},
				},
				controller.Config{EpochAccesses: cfg.EpochAccesses, MinGainHits: cfg.MinGainHits})
			if err != nil {
				return result{}, err
			}
			m.SetL2Observer(ctl)
			run, err := runMulticore("adaptive", m)
			if err != nil {
				return result{}, err
			}
			ctl.FinishEpoch()
			return result{run: run, decisions: ctl.Decisions()}, nil
		default:
			if err := m.SetL2Mask(0, replacement.Range(0, split)); err != nil {
				return result{}, err
			}
			if err := m.SetL2Mask(1, replacement.Range(split, cfg.L2Ways)); err != nil {
				return result{}, err
			}
			run, err := runMulticore(fmt.Sprintf("static %d+%d", split, cfg.L2Ways-split), m)
			return result{run: run}, err
		}
	})
	if err != nil {
		return nil, err
	}
	data := &MulticoreData{Config: cfg}
	data.Unpartitioned = results[0].run
	data.Adaptive = results[1].run
	data.Decisions = results[1].decisions
	for _, r := range results[2:] {
		data.Static = append(data.Static, r.run)
	}
	return data, nil
}

// Table renders the regime comparison.
func (d *MulticoreData) Table() *Table {
	t := &Table{
		Title:   "Cross-core interference: mpeg idct ∥ gzip over a shared L2 (mpeg+gzip columns)",
		Headers: []string{"shared-L2 regime", "L2 accesses", "L2 misses", "miss rate", "mpeg misses", "gzip misses", "cycles", "remaps"},
	}
	row := func(r MulticoreRun, tag string) {
		t.AddRow(r.Label+tag, fmt.Sprintf("%d", r.L2Accesses), fmt.Sprintf("%d", r.L2Misses),
			fmt.Sprintf("%.2f%%", 100*r.L2MissRate), fmt.Sprintf("%d", r.MPEGMisses),
			fmt.Sprintf("%d", r.GzipMisses), fmt.Sprintf("%d", r.Cycles), fmt.Sprintf("%d", r.Remaps))
	}
	row(d.Unpartitioned, "")
	best := d.BestStatic()
	for i, r := range d.Static {
		tag := ""
		if i == best {
			tag = " (best static)"
		}
		row(r, tag)
	}
	row(d.Adaptive, "")
	return t
}

// BusTable renders the coherence traffic of the unpartitioned run — the new
// machinery's visible footprint (the co-run shares no data, so invalidations
// and interventions must stay at zero while reads flow).
func (d *MulticoreData) BusTable() *Table {
	t := &Table{
		Title:   "Bus traffic (unpartitioned regime)",
		Headers: []string{"BusRd", "BusRdX", "BusUpgr", "invalidations", "interventions", "wb races"},
	}
	b := d.Unpartitioned.Bus
	t.AddRow(fmt.Sprintf("%d", b.Reads), fmt.Sprintf("%d", b.ReadXs), fmt.Sprintf("%d", b.Upgrades),
		fmt.Sprintf("%d", b.Invalidations), fmt.Sprintf("%d", b.Interventions), fmt.Sprintf("%d", b.WritebackRaces))
	return t
}

// Tables renders the dataset for paperbench.
func (d *MulticoreData) Tables() []*Table {
	return []*Table{
		d.Table(),
		d.BusTable(),
		controllerSummaryTable("Adaptive shared-L2 controller summary", d.Decisions),
	}
}

// Verify checks the experiment's qualitative claims, returning violated
// expectations (empty = all hold).
func (d *MulticoreData) Verify() []string {
	var problems []string
	if len(d.Static) == 0 {
		return []string{"multicore: missing static sweep"}
	}
	best := d.Static[d.BestStatic()]
	if best.L2MissRate >= d.Unpartitioned.L2MissRate {
		problems = append(problems, fmt.Sprintf(
			"multicore: best static split (%s, %.2f%%) not below unpartitioned L2 miss rate (%.2f%%)",
			best.Label, 100*best.L2MissRate, 100*d.Unpartitioned.L2MissRate))
	}
	if d.Adaptive.L2MissRate >= d.Unpartitioned.L2MissRate {
		problems = append(problems, fmt.Sprintf(
			"multicore: adaptive (%.2f%%) not below unpartitioned L2 miss rate (%.2f%%)",
			100*d.Adaptive.L2MissRate, 100*d.Unpartitioned.L2MissRate))
	}
	// Partitioning's mechanism: the streaming core's pollution is what the
	// columns remove, so mpeg's own L2 misses must drop.
	if best.MPEGMisses >= d.Unpartitioned.MPEGMisses {
		problems = append(problems, fmt.Sprintf(
			"multicore: best static split did not protect mpeg (misses %d vs unpartitioned %d)",
			best.MPEGMisses, d.Unpartitioned.MPEGMisses))
	}
	// The co-run shares no lines, so coherence traffic must be pure BusRd/
	// BusRdX — any invalidation or intervention would be a protocol bug.
	for _, r := range append([]MulticoreRun{d.Unpartitioned, d.Adaptive}, d.Static...) {
		if r.Bus.Invalidations != 0 || r.Bus.Interventions != 0 || r.Bus.WritebackRaces != 0 {
			problems = append(problems, fmt.Sprintf(
				"multicore: %s: coherence traffic on disjoint data (inv=%d int=%d races=%d)",
				r.Label, r.Bus.Invalidations, r.Bus.Interventions, r.Bus.WritebackRaces))
		}
	}
	if len(d.Decisions) < 2 {
		problems = append(problems, "multicore: adaptive run logged fewer than 2 epochs")
	}
	return problems
}
