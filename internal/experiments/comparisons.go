package experiments

import (
	"fmt"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/pagecolor"
	"colcache/internal/replacement"
	"colcache/internal/sched"
)

// Comparisons against the related-work baselines the paper discusses
// (§5.1): page coloring and process-granularity (Sun patent) partitioning.

// PageColorComparison contrasts column caching with page coloring on the
// two axes the paper names: isolation ability and remapping cost.
type PageColorComparison struct {
	Scheme         string
	TableMisses    int64 // hot-table misses under streaming interference
	RemapCost      int64 // cycles to move the table to a different cache slice
	RemapMechanism string
}

// RunPageColorComparison measures both schemes on the same workload: a hot
// 512B table swept between bursts of streaming, on 2KB of cache. Page
// coloring gets a direct-mapped physically-indexed cache (its native
// habitat); column caching gets the 4-column cache. Both isolate; the remap
// cost differs by orders of magnitude.
func RunPageColorComparison() ([]PageColorComparison, error) {
	const (
		lineBytes  = 32
		pageBytes  = 512
		cacheBytes = 2048
		rounds     = 64
		burst      = 64
	)
	table := memory.Region{Name: "table", Base: 0, Size: 512}
	stream := memory.Region{Name: "stream", Base: 1 << 20, Size: rounds * burst * lineBytes}

	var tr memtrace.Trace
	pos := uint64(0)
	for r := 0; r < rounds; r++ {
		for j := 0; j < burst; j++ {
			tr = append(tr, memtrace.Access{Addr: stream.Base + pos})
			pos += lineBytes
		}
		for off := uint64(0); off < table.Size; off += lineBytes {
			tr = append(tr, memtrace.Access{Addr: table.Base + off})
		}
	}
	streamCold := int64(rounds * burst)

	// --- page coloring on a direct-mapped cache --------------------------
	mapper, err := pagecolor.NewMapper(pageBytes, cacheBytes)
	if err != nil {
		return nil, err
	}
	if err := mapper.MapRegion(table, 0); err != nil {
		return nil, err
	}
	if err := mapper.MapRegionStriped(stream, []int{1, 2, 3}); err != nil {
		return nil, err
	}
	dm := cache.MustNew(cache.Config{LineBytes: lineBytes, NumSets: cacheBytes / lineBytes, NumWays: 1})
	for off := uint64(0); off < table.Size; off += lineBytes {
		dm.Read(mapper.Translate(table.Base+off), replacement.All(1))
	}
	warm := dm.Stats().Misses
	for _, a := range tr {
		dm.Read(mapper.Translate(a.Addr), replacement.All(1))
	}
	pcMisses := dm.Stats().Misses - warm - streamCold
	// Remap: move the table to color 1 — a full copy, at one line per
	// MissPenalty cycles of DMA.
	copied, err := mapper.Recolor(table, 1)
	if err != nil {
		return nil, err
	}
	pcRemapCost := int64(copied/lineBytes) * int64(memsys.DefaultTiming.MissPenalty)

	// --- column caching ---------------------------------------------------
	sys := memsys.MustNew(memsys.Config{
		Geometry: memory.MustGeometry(lineBytes, 64),
		Cache:    cache.Config{LineBytes: lineBytes, NumSets: 16, NumWays: 4},
		Timing:   memsys.DefaultTiming,
	})
	tintID, err := sys.MapRegion(table, replacement.Of(0))
	if err != nil {
		return nil, err
	}
	if _, err := sys.MapRegion(stream, replacement.Of(1, 2, 3)); err != nil {
		return nil, err
	}
	for off := uint64(0); off < table.Size; off += lineBytes {
		sys.Access(memtrace.Access{Addr: table.Base + off})
	}
	warmCol := sys.Stats().Cache.Misses
	sys.Run(tr)
	colMisses := sys.Stats().Cache.Misses - warmCol - streamCold
	// Remap: one tint-table write.
	remapsBefore := sys.Tints().Remaps()
	if err := sys.RemapTint(tintID, replacement.Of(1)); err != nil {
		return nil, err
	}
	colRemapCost := sys.Tints().Remaps() - remapsBefore // one cycle per write

	return []PageColorComparison{
		{Scheme: "page coloring (direct-mapped)", TableMisses: pcMisses,
			RemapCost: pcRemapCost, RemapMechanism: fmt.Sprintf("copy %d bytes", copied)},
		{Scheme: "column caching (4-way)", TableMisses: colMisses,
			RemapCost: colRemapCost, RemapMechanism: "1 tint-table write"},
	}, nil
}

// PageColorComparisonTable renders the comparison.
func PageColorComparisonTable(rows []PageColorComparison) *Table {
	t := &Table{
		Title:   "Comparison: page coloring vs column caching (§5.1)",
		Headers: []string{"scheme", "table misses", "remap cost (cycles)", "remap mechanism"},
	}
	for _, r := range rows {
		t.AddRow(r.Scheme, fmt.Sprintf("%d", r.TableMisses),
			fmt.Sprintf("%d", r.RemapCost), r.RemapMechanism)
	}
	return t
}

// GranularityComparison contrasts process-granularity masks (the Sun patent
// scheme, §5.1) with per-region tints. The workload is one job mixing a hot
// table with its own high-rate stream, run against a thrashing second job.
// A process mask protects the job from the *other* job, but "does not
// address other criteria such as memory address ranges": inside the job's
// partition the stream still evicts the table. Region tints fix exactly
// that, so the hot-table miss count is the discriminating metric.
type GranularityComparison struct {
	Scheme      string
	TableMisses int64 // misses on the hot table after warmup
	JobCPI      float64
}

// RunGranularityComparison runs job A (table + self-stream) against a
// thrashing job B under three schemes: unmanaged, per-process masks, and
// per-region tints.
func RunGranularityComparison() ([]GranularityComparison, error) {
	table := memory.Region{Name: "table", Base: 0, Size: 2048} // 64 lines = one column
	stream := memory.Region{Name: "stream", Base: 1 << 20, Size: 1 << 22}

	var rec memtrace.Recorder
	pos := uint64(0)
	for round := 0; round < 32; round++ {
		for j := 0; j < 256; j++ {
			rec.Think(1)
			rec.Load(stream.Base + pos)
			pos += 32
		}
		for off := uint64(0); off < table.Size; off += 32 {
			rec.Think(1)
			rec.Load(table.Base + off)
		}
	}
	jobATrace := rec.Trace()
	var thrash memtrace.Trace
	for i := 0; i < 1<<15; i++ {
		thrash = append(thrash, memtrace.Access{Addr: 1<<30 + uint64(i*32)})
	}

	run := func(scheme string) (GranularityComparison, error) {
		sys := memsys.MustNew(memsys.Config{
			Geometry: memory.MustGeometry(32, 4096),
			Cache:    cache.Config{LineBytes: 32, NumSets: 64, NumWays: 4},
			Timing:   memsys.DefaultTiming,
		})
		jobA := &sched.Job{Name: "A", Trace: jobATrace, TargetInstructions: 1 << 17}
		jobB := &sched.Job{Name: "B", Trace: thrash, TargetInstructions: 1 << 17}
		switch scheme {
		case "unmanaged":
		case "process masks (Sun)":
			jobA.Mask = replacement.Of(0, 1)
			jobB.Mask = replacement.Of(2, 3)
		case "region tints (column caching)":
			if _, err := sys.MapRegion(table, replacement.Of(0)); err != nil {
				return GranularityComparison{}, err
			}
			if _, err := sys.MapRegion(stream, replacement.Of(1)); err != nil {
				return GranularityComparison{}, err
			}
			jobB.Mask = replacement.Of(2, 3)
		}
		rr, err := sched.NewRoundRobin(sys, 512)
		if err != nil {
			return GranularityComparison{}, err
		}
		rr.Add(jobA)
		rr.Add(jobB)
		stats := rr.Run()
		// Table misses = job A's misses minus the stream's compulsory
		// ones, scaled by the fraction of the (cyclic) trace A executed.
		var streamAccesses int64
		for _, a := range jobATrace {
			if stream.Contains(a.Addr) {
				streamAccesses++
			}
		}
		frac := float64(stats[0].Accesses) / float64(len(jobATrace))
		tableMisses := stats[0].Misses - int64(frac*float64(streamAccesses))
		return GranularityComparison{Scheme: scheme, TableMisses: tableMisses, JobCPI: stats[0].CPI()}, nil
	}

	var out []GranularityComparison
	for _, s := range []string{"unmanaged", "process masks (Sun)", "region tints (column caching)"} {
		row, err := run(s)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// GranularityComparisonTable renders the comparison.
func GranularityComparisonTable(rows []GranularityComparison) *Table {
	t := &Table{
		Title:   "Comparison: partitioning granularity (hot table vs the job's own stream)",
		Headers: []string{"scheme", "hot-table misses", "job A CPI"},
	}
	for _, r := range rows {
		t.AddRow(r.Scheme, fmt.Sprintf("%d", r.TableMisses), fmt.Sprintf("%.3f", r.JobCPI))
	}
	return t
}

// L2Comparison measures the hierarchy ablation: the gzip job solo on L1
// only, with an L2, and with a masked L2.
type L2Comparison struct {
	Configuration string
	CPI           float64
	L2HitRate     float64
}

// RunL2Comparison sweeps the hierarchy options for the idct workload on a
// small L1.
func RunL2Comparison(trace memtrace.Trace) ([]L2Comparison, error) {
	build := func() *memsys.System {
		cfg := memsys.Config{
			Geometry: memory.MustGeometry(32, 4096),
			Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
			Timing:   memsys.DefaultTiming,
		}
		cfg.Timing.MissPenalty = 100
		return memsys.MustNew(cfg)
	}
	l2cfg := cache.Config{LineBytes: 32, NumSets: 512, NumWays: 8} // 128KB

	var out []L2Comparison
	sys := build()
	sys.Run(trace)
	out = append(out, L2Comparison{Configuration: "L1 only (100-cycle memory)", CPI: sys.Stats().CPI()})

	for _, masked := range []bool{false, true} {
		sys := build()
		if err := sys.EnableL2(l2cfg, 10, masked); err != nil {
			return nil, err
		}
		sys.Run(trace)
		name := "L1 + 128KB L2"
		if masked {
			name += " (column mask applied at L2)"
		}
		out = append(out, L2Comparison{
			Configuration: name,
			CPI:           sys.Stats().CPI(),
			L2HitRate:     sys.L2Stats().HitRate(),
		})
	}
	return out, nil
}

// L2ComparisonTable renders the hierarchy ablation.
func L2ComparisonTable(rows []L2Comparison) *Table {
	t := &Table{
		Title:   "Ablation: memory hierarchy depth",
		Headers: []string{"configuration", "CPI", "L2 hit rate"},
	}
	for _, r := range rows {
		t.AddRow(r.Configuration, fmt.Sprintf("%.3f", r.CPI), fmt.Sprintf("%.2f%%", 100*r.L2HitRate))
	}
	return t
}
