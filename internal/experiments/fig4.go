package experiments

import (
	"fmt"

	"colcache/internal/cache"
	"colcache/internal/layout"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/workloads"
	"colcache/internal/workloads/mpeg"
)

// Fig4Config parameterizes the Figure 4 reproduction: three MPEG routines on
// a 2KB on-chip memory organized as 4 columns, sweeping how many columns are
// cache versus scratchpad, with the data layout algorithm choosing variable
// placement for every partition.
type Fig4Config struct {
	MPEG        mpeg.Config
	Columns     int // total columns of on-chip memory (paper: 4)
	ColumnBytes int // bytes per column (paper: 512 → 2KB total)
	LineBytes   int
	PageBytes   int // mapping granularity; small pages suit a 2KB memory
	Timing      memsys.Timing
}

// DefaultFig4Config reproduces the paper's setup.
var DefaultFig4Config = Fig4Config{
	MPEG:        mpeg.DefaultConfig,
	Columns:     4,
	ColumnBytes: 512,
	LineBytes:   32,
	PageBytes:   64,
	Timing:      memsys.DefaultTiming,
}

// RoutineSweep is one routine's cycle count at each cache size (Figures
// 4(a)–4(c)). Cycles[k] is the cycle count with k columns of cache and
// Columns-k columns of scratchpad.
type RoutineSweep struct {
	Name   string
	Cycles []int64
}

// Best returns the minimum cycle count and the cache size achieving it.
func (r RoutineSweep) Best() (cycles int64, cacheColumns int) {
	cycles, cacheColumns = r.Cycles[0], 0
	for k, c := range r.Cycles {
		if c < cycles {
			cycles, cacheColumns = c, k
		}
	}
	return cycles, cacheColumns
}

// Fig4Data is the full Figure 4 dataset.
type Fig4Data struct {
	Config   Fig4Config
	Routines []RoutineSweep // dequant, plus, idct
	// Total[k] is the whole application's cycle count under the static
	// partition with k cache columns (Figure 4(d) "Total" curve).
	Total []int64
	// Column is the whole application's cycle count with a column cache
	// dynamically repartitioned to each routine's optimum (Figure 4(d)
	// "Column" result), including remapping overhead.
	Column int64
	// RemapOverheadCycles is the repartitioning cost included in Column:
	// page-table writes, tint-table writes and TLB flushes between routines.
	RemapOverheadCycles int64
}

// runPartition executes prog on a machine with k cache columns and
// Columns-k scratchpad columns, using the layout algorithm, and returns the
// cycle count plus the remapping work the layout performed.
func runPartition(cfg Fig4Config, prog *workloads.Program, k int) (int64, int64, error) {
	scratchBytes := uint64(cfg.Columns-k) * uint64(cfg.ColumnBytes)
	ways := k
	if ways == 0 {
		ways = 1 // the cache exists but the layout routes nothing to it
	}
	sys, err := memsys.New(memsys.Config{
		Geometry: memory.MustGeometry(cfg.LineBytes, cfg.PageBytes),
		Cache: cache.Config{
			LineBytes: cfg.LineBytes,
			NumSets:   cfg.ColumnBytes / cfg.LineBytes,
			NumWays:   ways,
		},
		Timing:          cfg.Timing,
		ScratchpadBytes: scratchBytes,
	})
	if err != nil {
		return 0, 0, err
	}
	plan, err := layout.Build(layout.Request{
		Trace: prog.Trace,
		Vars:  prog.Vars,
		Machine: layout.Machine{
			Columns:         k,
			ColumnBytes:     cfg.ColumnBytes,
			ScratchpadBytes: scratchBytes,
		},
	})
	if err != nil {
		return 0, 0, err
	}
	if _, err := layout.Apply(plan, sys, 0); err != nil {
		return 0, 0, err
	}
	cycles := sys.Run(prog.Trace)
	remapWork := sys.PageTable().Writes() + sys.Tints().Remaps()
	return cycles, remapWork, nil
}

// RunFig4 produces the Figure 4 dataset.
func RunFig4(cfg Fig4Config) (*Fig4Data, error) {
	if cfg.Columns < 1 {
		return nil, fmt.Errorf("experiments: fig4 needs at least one column, got %d", cfg.Columns)
	}
	progs := []*workloads.Program{
		mpeg.Dequant(cfg.MPEG),
		mpeg.Plus(cfg.MPEG),
		mpeg.Idct(cfg.MPEG),
	}
	data := &Fig4Data{Config: cfg, Total: make([]int64, cfg.Columns+1)}

	// Every (routine, partition) point is an independent machine; fan the
	// grid out and assemble the sweeps in order afterwards.
	type point struct {
		prog *workloads.Program
		k    int
	}
	var grid []point
	for _, prog := range progs {
		for k := 0; k <= cfg.Columns; k++ {
			grid = append(grid, point{prog, k})
		}
	}
	type measure struct {
		cycles, remap int64
	}
	results, err := sweepMap(grid, func(p point, _ int) (measure, error) {
		cycles, remap, err := runPartition(cfg, p.prog, p.k)
		if err != nil {
			return measure{}, fmt.Errorf("experiments: fig4 %s k=%d: %w", p.prog.Name, p.k, err)
		}
		return measure{cycles, remap}, nil
	})
	if err != nil {
		return nil, err
	}

	remapWork := make([][]int64, len(progs))
	for i, prog := range progs {
		sweep := RoutineSweep{Name: prog.Name, Cycles: make([]int64, cfg.Columns+1)}
		remapWork[i] = make([]int64, cfg.Columns+1)
		for k := 0; k <= cfg.Columns; k++ {
			m := results[i*(cfg.Columns+1)+k]
			sweep.Cycles[k] = m.cycles
			data.Total[k] += m.cycles
			remapWork[i][k] = m.remap
		}
		data.Routines = append(data.Routines, sweep)
	}
	// Column cache: each routine runs at its own optimum partition, with the
	// inter-routine repartitioning charged at one cycle per page-table or
	// tint-table write (the paper's point is precisely that this is cheap).
	for i, sweep := range data.Routines {
		best, bestK := sweep.Best()
		data.Column += best
		data.RemapOverheadCycles += remapWork[i][bestK]
	}
	data.Column += data.RemapOverheadCycles
	return data, nil
}

// Tables renders the dataset as the paper's figure panels.
func (d *Fig4Data) Tables() []*Table {
	var tables []*Table
	for _, sweep := range d.Routines {
		t := &Table{
			Title:   fmt.Sprintf("Figure 4: %s cycle count vs cache size", sweep.Name),
			Headers: []string{"cache columns", "scratchpad bytes", "cycles"},
		}
		for k, c := range sweep.Cycles {
			t.AddRow(
				fmt.Sprintf("%d", k),
				fmt.Sprintf("%d", (d.Config.Columns-k)*d.Config.ColumnBytes),
				fmt.Sprintf("%d", c),
			)
		}
		tables = append(tables, t)
	}
	tot := &Table{
		Title:   "Figure 4(d): overall application",
		Headers: []string{"configuration", "cycles"},
	}
	for k, c := range d.Total {
		tot.AddRow(fmt.Sprintf("static %d-column cache", k), fmt.Sprintf("%d", c))
	}
	tot.AddRow("column cache (dynamic)", fmt.Sprintf("%d", d.Column))
	tables = append(tables, tot)
	return tables
}

// Verify checks the paper's qualitative claims against the data, returning a
// list of violated expectations (empty = shape reproduced).
func (d *Fig4Data) Verify() []string {
	var problems []string
	byName := make(map[string]RoutineSweep)
	for _, r := range d.Routines {
		byName[r.Name] = r
	}
	k := d.Config.Columns
	if dq, ok := byName["dequant"]; ok {
		if _, best := dq.Best(); best != 0 {
			problems = append(problems, fmt.Sprintf("dequant optimum at %d cache columns, paper says all-scratchpad", best))
		}
		if dq.Cycles[k] <= dq.Cycles[0] {
			problems = append(problems, "dequant: full cache not worse than full scratchpad")
		}
	}
	if pl, ok := byName["plus"]; ok {
		if _, best := pl.Best(); best != 0 {
			problems = append(problems, fmt.Sprintf("plus optimum at %d cache columns, paper says all-scratchpad", best))
		}
	}
	if id, ok := byName["idct"]; ok {
		if id.Cycles[0] <= id.Cycles[k] {
			problems = append(problems, "idct: all-scratchpad not worse than full cache")
		}
		if _, best := id.Best(); best == 0 {
			problems = append(problems, "idct optimum at zero cache columns")
		}
	}
	staticBest := d.Total[0]
	for _, c := range d.Total {
		if c < staticBest {
			staticBest = c
		}
	}
	if d.Column >= staticBest {
		problems = append(problems, fmt.Sprintf("column cache (%d) does not beat best static partition (%d)", d.Column, staticBest))
	}
	return problems
}
