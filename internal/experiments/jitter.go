package experiments

import (
	"fmt"
	"math"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/replacement"
	"colcache/internal/sched"
	"colcache/internal/workloads"
	"colcache/internal/workloads/gzipsim"
)

// Interrupt-jitter experiment (paper §4.2, closing paragraph): "one may
// argue that the time quantum could be fixed for predictability, but in
// reality due to interrupts and exceptions the effective time quantum can
// vary significantly during the time that a job is running simultaneously
// with other jobs." We run the Figure 5 mix with the quantum perturbed
// ±jitter around a nominal value, across several seeds, and measure the
// spread of job A's CPI: the column-mapped configuration should be nearly
// immune.

// JitterConfig parameterizes the experiment.
type JitterConfig struct {
	Gzip               gzipsim.Config
	CacheBytes         int
	NominalQuantum     int64
	JitterFrac         float64
	Seeds              int
	TargetInstructions int64
	LineBytes, Ways    int
	MappedColumnsForA  int
}

// DefaultJitterConfig: the 16KB machine at the quantum where the standard
// curve is steep, ±90% jitter, 8 seeds.
var DefaultJitterConfig = JitterConfig{
	Gzip:               gzipsim.DefaultConfig,
	CacheBytes:         16 * 1024,
	NominalQuantum:     16384,
	JitterFrac:         0.9,
	Seeds:              8,
	TargetInstructions: 1 << 19,
	LineBytes:          32,
	Ways:               4,
	MappedColumnsForA:  3,
}

// JitterResult summarizes one configuration's CPI distribution over seeds.
type JitterResult struct {
	Mapped  bool
	MeanCPI float64
	MinCPI  float64
	MaxCPI  float64
	StdDev  float64
}

// Label names the row.
func (r JitterResult) Label() string {
	if r.Mapped {
		return "column-mapped"
	}
	return "standard cache"
}

// RunJitter produces the experiment's two rows.
func RunJitter(cfg JitterConfig) ([]JitterResult, error) {
	jobs := make([]*workloads.Program, 3)
	for i := range jobs {
		g := cfg.Gzip
		g.Seed = cfg.Gzip.Seed + int64(i)
		jobs[i] = gzipsim.Job(g, memory.Addr(i)<<32)
	}
	numSets := cfg.CacheBytes / (cfg.LineBytes * cfg.Ways)

	// Every (configuration, seed) run is an independent machine; fan the
	// grid out and summarize per configuration afterwards.
	type point struct {
		mapped bool
		seed   int
	}
	var grid []point
	for _, mapped := range []bool{false, true} {
		for seed := 1; seed <= cfg.Seeds; seed++ {
			grid = append(grid, point{mapped, seed})
		}
	}
	cpis, err := sweepMap(grid, func(p point, _ int) (float64, error) {
		sys, err := memsys.New(memsys.Config{
			Geometry: memory.MustGeometry(cfg.LineBytes, 4096),
			Cache:    cache.Config{LineBytes: cfg.LineBytes, NumSets: numSets, NumWays: cfg.Ways},
			Timing:   memsys.DefaultTiming,
		})
		if err != nil {
			return 0, err
		}
		if p.mapped {
			own := cfg.MappedColumnsForA
			base, size := jobSpan(jobs[0])
			if _, err := sys.MapRegion(memory.Region{Name: "jobA", Base: base, Size: size},
				replacement.Range(0, own)); err != nil {
				return 0, err
			}
			for i := 1; i < 3; i++ {
				base, size := jobSpan(jobs[i])
				if _, err := sys.MapRegion(memory.Region{Name: fmt.Sprintf("job%c", 'A'+i), Base: base, Size: size},
					replacement.Range(own, cfg.Ways)); err != nil {
					return 0, err
				}
			}
		}
		rr, err := sched.NewRoundRobin(sys, cfg.NominalQuantum)
		if err != nil {
			return 0, err
		}
		rr.JitterFrac = cfg.JitterFrac
		rr.JitterSeed = uint64(p.seed) * 0x9e3779b97f4a7c15
		for i, prog := range jobs {
			if err := rr.Add(&sched.Job{
				Name:               fmt.Sprintf("job%c", 'A'+i),
				Trace:              prog.Trace,
				TargetInstructions: cfg.TargetInstructions,
			}); err != nil {
				return 0, err
			}
		}
		return rr.Run()[0].CPI(), nil
	})
	if err != nil {
		return nil, err
	}

	var out []JitterResult
	for i, mapped := range []bool{false, true} {
		out = append(out, summarizeJitter(mapped, cpis[i*cfg.Seeds:(i+1)*cfg.Seeds]))
	}
	return out, nil
}

func summarizeJitter(mapped bool, cpis []float64) JitterResult {
	r := JitterResult{Mapped: mapped, MinCPI: cpis[0], MaxCPI: cpis[0]}
	var sum float64
	for _, c := range cpis {
		sum += c
		if c < r.MinCPI {
			r.MinCPI = c
		}
		if c > r.MaxCPI {
			r.MaxCPI = c
		}
	}
	r.MeanCPI = sum / float64(len(cpis))
	var ss float64
	for _, c := range cpis {
		ss += (c - r.MeanCPI) * (c - r.MeanCPI)
	}
	r.StdDev = math.Sqrt(ss / float64(len(cpis)))
	return r
}

// JitterTable renders the experiment.
func JitterTable(rows []JitterResult, cfg JitterConfig) *Table {
	t := &Table{
		Title: fmt.Sprintf("Interrupt jitter: job A CPI with quantum %d ±%.0f%% over %d seeds (%dKB cache)",
			cfg.NominalQuantum, 100*cfg.JitterFrac, cfg.Seeds, cfg.CacheBytes/1024),
		Headers: []string{"configuration", "mean CPI", "min", "max", "spread (max-min)", "stddev"},
	}
	for _, r := range rows {
		t.AddRow(r.Label(),
			fmt.Sprintf("%.3f", r.MeanCPI),
			fmt.Sprintf("%.3f", r.MinCPI),
			fmt.Sprintf("%.3f", r.MaxCPI),
			fmt.Sprintf("%.3f", r.MaxCPI-r.MinCPI),
			fmt.Sprintf("%.4f", r.StdDev))
	}
	return t
}
