package experiments

import (
	"strings"
	"testing"
)

// adaptiveTestConfig trims the default scenario so the unit tests stay
// fast while keeping the phase structure that makes adaptation win.
func adaptiveTestConfig() AdaptiveConfig {
	cfg := DefaultAdaptiveConfig
	cfg.Phases = 4
	cfg.Passes = 24
	cfg.CoRunTarget = 1 << 16
	return cfg
}

func TestRunAdaptiveShapes(t *testing.T) {
	data, err := RunAdaptive(adaptiveTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if problems := data.Verify(); len(problems) != 0 {
		t.Fatalf("shape checks failed: %v", problems)
	}
	if len(data.PhaseStatic) != data.Config.Ways-1 {
		t.Errorf("static sweep has %d points, want %d", len(data.PhaseStatic), data.Config.Ways-1)
	}
	best := data.PhaseStatic[data.BestPhaseStatic()]
	t.Logf("phase: best static %s %.2f%%, adaptive %.2f%% (remaps %d, %d epochs)",
		best.Label, 100*best.MissRate, 100*data.PhaseAdaptive.MissRate,
		data.PhaseAdaptive.Remaps, len(data.PhaseDecisions))
	// The decision log must carry per-epoch allocations summing to the
	// cache's columns and per-tint stats.
	for _, dec := range data.PhaseDecisions {
		total := 0
		for _, te := range dec.Tints {
			total += te.Columns
		}
		if total != data.Config.Ways {
			t.Errorf("epoch %d allocation covers %d of %d columns", dec.Epoch, total, data.Config.Ways)
		}
	}
}

func TestAdaptiveTables(t *testing.T) {
	data, err := RunAdaptive(adaptiveTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	tables := data.Tables()
	if len(tables) != 4 {
		t.Fatalf("Tables() = %d tables, want 4", len(tables))
	}
	var b strings.Builder
	for _, tab := range tables {
		if err := tab.Write(&b); err != nil {
			t.Fatal(err)
		}
	}
	out := b.String()
	for _, want := range []string{"best static", "adaptive", "Δmiss", "final allocation", "phaseA", "mpeg"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}

func TestRunAdaptiveRejectsTinyCache(t *testing.T) {
	cfg := adaptiveTestConfig()
	cfg.Ways = 2
	if _, err := RunAdaptive(cfg); err == nil {
		t.Error("2-way cache accepted")
	}
}
