package experiments

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/workloads/synth"
)

func specJob(label string, sets int) SpecJob {
	return SpecJob{
		Label: label,
		Build: func() (*memsys.System, memtrace.Trace, error) {
			sys, err := memsys.New(memsys.Config{
				Geometry: memory.MustGeometry(32, 4096),
				Cache:    cache.Config{LineBytes: 32, NumSets: sets, NumWays: 4},
				Timing:   memsys.DefaultTiming,
			})
			if err != nil {
				return nil, nil, err
			}
			return sys, synth.Stream(0, 1<<14, 4, 2).Trace, nil
		},
	}
}

func TestRunSpecsOrderedAndDeterministic(t *testing.T) {
	jobs := []SpecJob{specJob("a", 16), specJob("b", 32), specJob("c", 64), specJob("d", 128)}
	serial, err := RunSpecs(context.Background(), jobs, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var done int
	parallel, err := RunSpecs(context.Background(), jobs, 4, 0, func(d, total int) {
		done = d
		if total != len(jobs) {
			t.Errorf("progress total = %d, want %d", total, len(jobs))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != len(jobs) {
		t.Fatalf("progress reported %d done, want %d", done, len(jobs))
	}
	for i := range jobs {
		if serial[i].Label != jobs[i].Label || parallel[i].Label != jobs[i].Label {
			t.Fatalf("result %d out of order: %q / %q", i, serial[i].Label, parallel[i].Label)
		}
		if serial[i].Cycles != parallel[i].Cycles || serial[i].Stats != parallel[i].Stats {
			t.Fatalf("point %d differs serial vs parallel: %+v vs %+v", i, serial[i], parallel[i])
		}
		if serial[i].Cycles == 0 {
			t.Fatalf("point %d ran no cycles", i)
		}
	}
	// Doubling the cache monotonically helps a repeated stream.
	for i := 1; i < len(serial); i++ {
		if serial[i].Stats.Cache.Misses > serial[i-1].Stats.Cache.Misses {
			t.Fatalf("misses rose with cache size: %v", serial)
		}
	}
}

func TestRunSpecsAfterHookAndFailure(t *testing.T) {
	ok := specJob("ok", 16)
	ok.After = func(sys *memsys.System, res *SpecResult) error {
		res.Extra = sys.Tints().NumColumns()
		return nil
	}
	bad := SpecJob{
		Label: "bad",
		Build: func() (*memsys.System, memtrace.Trace, error) {
			return nil, nil, fmt.Errorf("no such workload")
		},
	}
	res, err := RunSpecs(context.Background(), []SpecJob{ok}, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Extra != 4 {
		t.Fatalf("After hook result = %v, want 4", res[0].Extra)
	}
	if _, err := RunSpecs(context.Background(), []SpecJob{ok, bad}, 2, 0, nil); err == nil {
		t.Fatal("failing job did not surface an error")
	}
}

func TestRunSpecsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSpecs(ctx, []SpecJob{specJob("a", 16)}, 1, 64, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
