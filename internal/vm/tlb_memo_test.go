package vm

import (
	"testing"

	"colcache/internal/memory"
	"colcache/internal/tint"
)

// Regression tests for the last-translation memo's invariant maintenance:
// the memo is not validated per use, so every mutation path that could make
// it stale — FlushPage, FlushAll, SetASID, a Retint — must drop it, or a
// flushed/retinted/foreign-ASID translation would keep hitting.

func memoTLB(t *testing.T) (*PageTable, *TLB) {
	t.Helper()
	g := memory.MustGeometry(32, 4096)
	pt := NewPageTable(g)
	tlb, err := NewTLB(TLBConfig{Entries: 4, Ways: 4}, pt)
	if err != nil {
		t.Fatal(err)
	}
	return pt, tlb
}

func TestMemoHitCounts(t *testing.T) {
	_, tlb := memoTLB(t)
	addr := memory.Addr(0x1000)
	tlb.Lookup(addr) // miss + install
	tlb.Lookup(addr) // memo hit
	tlb.Lookup(addr + 4)
	st := tlb.Stats()
	if st.Accesses != 3 || st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats %+v, want 3 accesses / 1 miss / 2 hits", st)
	}
}

func TestMemoDroppedByFlushPage(t *testing.T) {
	_, tlb := memoTLB(t)
	addr := memory.Addr(0x2000)
	tlb.Lookup(addr)
	if !tlb.FlushPage(uint64(addr) >> 12) {
		t.Fatal("FlushPage missed the installed entry")
	}
	if _, hit := tlb.Lookup(addr); hit {
		t.Fatal("memo fabricated a hit after FlushPage")
	}
}

func TestMemoDroppedByFlushAll(t *testing.T) {
	_, tlb := memoTLB(t)
	addr := memory.Addr(0x3000)
	tlb.Lookup(addr)
	tlb.FlushAll()
	if _, hit := tlb.Lookup(addr); hit {
		t.Fatal("memo fabricated a hit after FlushAll")
	}
}

func TestMemoDroppedBySetASID(t *testing.T) {
	_, tlb := memoTLB(t)
	addr := memory.Addr(0x4000)
	tlb.Lookup(addr)
	tlb.SetASID(7)
	if _, hit := tlb.Lookup(addr); hit {
		t.Fatal("memo leaked a translation across an ASID switch")
	}
	// And back: the original ASID's entry is still resident, but the memo
	// must not have been left pointing at ASID 7's copy.
	tlb.SetASID(0)
	if _, hit := tlb.Lookup(addr); !hit {
		t.Fatal("original ASID's entry lost across the round trip")
	}
}

func TestMemoObservesRetint(t *testing.T) {
	pt, tlb := memoTLB(t)
	addr := memory.Addr(0x5000)
	pte, _ := tlb.Lookup(addr)
	if pte.Tint != 0 {
		t.Fatalf("fresh page tint %d, want 0", pte.Tint)
	}
	tlb.Lookup(addr) // memoize
	if n := Retint(pt, tlb, addr, 4096, tint.Tint(3)); n != 1 {
		t.Fatalf("Retint rewrote %d pages, want 1", n)
	}
	pte, hit := tlb.Lookup(addr)
	if hit {
		t.Fatal("retinted page still hit in the TLB")
	}
	if pte.Tint != 3 {
		t.Fatalf("post-retint tint %d, want 3 — the memo served a stale PTE", pte.Tint)
	}
}

func TestMemoFollowsEviction(t *testing.T) {
	g := memory.MustGeometry(32, 4096)
	pt := NewPageTable(g)
	tlb, err := NewTLB(TLBConfig{Entries: 2, Ways: 2}, pt)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := memory.Addr(0x1000), memory.Addr(0x2000), memory.Addr(0x3000)
	tlb.Lookup(a)
	tlb.Lookup(b) // TLB full; memo on b
	tlb.Lookup(c) // evicts a (LRU); memo repoints to c
	if _, hit := tlb.Lookup(c); !hit {
		t.Fatal("memo not repointed to the freshly installed entry")
	}
	if _, hit := tlb.Lookup(a); hit {
		t.Fatal("evicted page still hit")
	}
}
