package vm

import (
	"fmt"

	"colcache/internal/memory"
	"colcache/internal/tint"
)

// TLBConfig sizes the translation-lookaside buffer.
type TLBConfig struct {
	Entries int // total entries (power of two)
	Ways    int // associativity; Entries/Ways sets. Ways==Entries => fully associative.
}

// DefaultTLBConfig is a 64-entry fully-associative TLB, typical of embedded
// cores of the paper's era.
var DefaultTLBConfig = TLBConfig{Entries: 64, Ways: 64}

func (c TLBConfig) validate() error {
	if c.Entries <= 0 || !memory.IsPow2(c.Entries) {
		return fmt.Errorf("vm: TLB entry count %d is not a positive power of two", c.Entries)
	}
	if c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("vm: TLB ways %d does not divide entries %d", c.Ways, c.Entries)
	}
	if sets := c.Entries / c.Ways; !memory.IsPow2(sets) {
		return fmt.Errorf("vm: TLB set count %d is not a power of two", sets)
	}
	return nil
}

// TLBStats counts TLB events.
type TLBStats struct {
	Accesses int64
	Hits     int64
	Misses   int64
	Flushes  int64 // single-entry flushes due to re-tinting
}

// HitRate returns hits/accesses, or 1 for an untouched TLB.
func (s TLBStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type tlbEntry struct {
	pn    uint64
	asid  uint16
	pte   PTE
	valid bool
	stamp uint64
}

// TLB caches PTEs, including the tint extension. Lookups that miss walk the
// page table (cost accounted by the memory system) and install the entry,
// evicting the LRU entry of the set.
type TLB struct {
	cfg     TLBConfig
	pt      *PageTable
	pgShift uint // page-number shift, mirrored from the geometry
	sets    [][]tlbEntry
	asid    uint16

	// Counter economy on the lookup path: clock advances once per Lookup, so
	// Accesses is derived as clock-clockBase (clockBase snapshots clock at
	// the last ResetStats) and Hits as Accesses-Misses. Only misses and
	// flushes keep dedicated counters; the memo hit path writes exactly two
	// words (clock, entry stamp).
	clock     uint64
	clockBase uint64
	misses    int64
	flushes   int64

	// Last-translation memo: the entry and page number of the most recent
	// hit or install. Consecutive accesses to the same page — the common
	// case at cache-line granularity — skip the associative scan with a
	// single compare against memoPn. The memo is maintained by invariant
	// rather than validated per use: every mutation that could make it
	// stale goes through a TLB method (FlushPage, FlushAll, SetASID, an
	// install in lookupSlow), and each of those either repoints or drops
	// it, so memo non-nil implies memo is the live, valid entry for
	// (memoPn, current ASID). The hit updates the entry's recency stamp
	// exactly like the scan path. (Sets are allocated once in NewTLB and
	// never reallocated, so the pointer stays valid for the TLB's
	// lifetime.)
	memo   *tlbEntry
	memoPn uint64
}

// dropMemo invalidates the last-translation memo.
func (t *TLB) dropMemo() {
	t.memo = nil
	t.memoPn = 0
}

// NewTLB builds a TLB over page table pt.
func NewTLB(cfg TLBConfig, pt *PageTable) (*TLB, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &TLB{cfg: cfg, pt: pt, pgShift: memory.Log2(pt.g.PageBytes)}
	numSets := cfg.Entries / cfg.Ways
	t.sets = make([][]tlbEntry, numSets)
	for i := range t.sets {
		t.sets[i] = make([]tlbEntry, cfg.Ways)
	}
	return t, nil
}

// MustNewTLB is NewTLB that panics on error.
func MustNewTLB(cfg TLBConfig, pt *PageTable) *TLB {
	t, err := NewTLB(cfg, pt)
	if err != nil {
		panic(err)
	}
	return t
}

// Stats returns the accumulated counters.
func (t *TLB) Stats() TLBStats {
	acc := int64(t.clock - t.clockBase)
	return TLBStats{
		Accesses: acc,
		Hits:     acc - t.misses,
		Misses:   t.misses,
		Flushes:  t.flushes,
	}
}

// ResetStats zeroes the counters without dropping entries.
func (t *TLB) ResetStats() {
	t.clockBase = t.clock
	t.misses = 0
	t.flushes = 0
}

func (t *TLB) setOf(pn uint64) int { return int(pn % uint64(len(t.sets))) }

// Lookup returns the PTE for the page containing addr and whether it was a
// TLB hit. On a miss the entry is walked from the page table and installed.
// The memo fast path lives in this wrapper so it inlines into callers; the
// associative scan and install stay in lookupSlow.
func (t *TLB) Lookup(addr memory.Addr) (PTE, bool) {
	pn := addr >> t.pgShift
	if e := t.memo; e != nil && t.memoPn == pn {
		t.clock++
		e.stamp = t.clock
		return e.pte, true
	}
	return t.lookupSlow(pn)
}

func (t *TLB) lookupSlow(pn uint64) (PTE, bool) {
	t.clock++
	setIdx := t.setOf(pn)
	set := t.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].pn == pn && set[i].asid == t.asid {
			set[i].stamp = t.clock
			t.memo, t.memoPn = &set[i], pn
			return set[i].pte, true
		}
	}
	t.misses++
	pte := t.pt.LookupPage(pn)
	// Install, evicting LRU (or an invalid slot).
	victim, best := 0, ^uint64(0)
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].stamp < best {
			victim, best = i, set[i].stamp
		}
	}
	set[victim] = tlbEntry{pn: pn, asid: t.asid, pte: pte, valid: true, stamp: t.clock}
	t.memo, t.memoPn = &set[victim], pn
	return pte, false
}

// SetASID switches the current address-space identifier. Entries installed
// under other ASIDs stay resident but stop matching, so a context switch
// needs no flush — the alternative to FlushAll on machines whose TLB tags
// entries (ASIDs change which process's entries are live, not the page
// table, which in this simulator is shared and physically tagged).
func (t *TLB) SetASID(id uint16) {
	t.asid = id
	t.dropMemo()
}

// ASID returns the current address-space identifier.
func (t *TLB) ASID() uint16 { return t.asid }

// FlushPage invalidates every entry for page pn, and reports whether any
// was dropped. Re-tinting a page must flush (or update) its TLB entries so
// the new tint is observed — every entry, across ASIDs: the page table is
// shared and physically tagged, so a page looked up under two ASIDs has two
// cached copies, and leaving either one valid would let a stale tint keep
// governing replacement after a Retint. (Found by the differential
// conformance oracle: the first-match-only flush this replaces diverged
// from the reference model on ASID-switching scripts.)
func (t *TLB) FlushPage(pn uint64) bool {
	t.dropMemo()
	set := t.sets[t.setOf(pn)]
	any := false
	for i := range set {
		if set[i].valid && set[i].pn == pn {
			set[i].valid = false
			t.flushes++
			any = true
		}
	}
	return any
}

// FlushAll invalidates every entry, as on a context switch without ASIDs.
func (t *TLB) FlushAll() {
	t.dropMemo()
	for s := range t.sets {
		for i := range t.sets[s] {
			t.sets[s][i].valid = false
		}
	}
	t.flushes++
}

// TLBSnapshot is a detached copy of a TLB's mutable state — every entry plus
// the ASID and the statistics counters. The epoch-parallel multicore stepper
// snapshots each core's TLB at epoch boundaries so a conflicting epoch can be
// rolled back; entries are flattened into one contiguous slice so the copy is
// a single pass. The zero value is ready to be filled by TLB.Snapshot.
type TLBSnapshot struct {
	entries   []tlbEntry
	asid      uint16
	clock     uint64
	clockBase uint64
	misses    int64
	flushes   int64
}

// Snapshot copies the TLB's complete mutable state into dst, allocating only
// when dst is nil or sized for a different TLB. The returned snapshot shares
// nothing with the live TLB.
func (t *TLB) Snapshot(dst *TLBSnapshot) *TLBSnapshot {
	if dst == nil {
		dst = &TLBSnapshot{}
	}
	if len(dst.entries) != t.cfg.Entries {
		dst.entries = make([]tlbEntry, t.cfg.Entries)
	}
	i := 0
	for _, set := range t.sets {
		i += copy(dst.entries[i:], set)
	}
	dst.asid = t.asid
	dst.clock = t.clock
	dst.clockBase = t.clockBase
	dst.misses = t.misses
	dst.flushes = t.flushes
	return dst
}

// Restore copies a snapshot taken from this TLB (same configuration) back
// over the live state and drops the last-translation memo, which may point at
// a slot the restore rewrote.
func (t *TLB) Restore(s *TLBSnapshot) {
	if len(s.entries) != t.cfg.Entries {
		panic("vm: TLB Restore with a snapshot of a different shape")
	}
	i := 0
	for _, set := range t.sets {
		i += copy(set, s.entries[i:i+len(set)])
	}
	t.asid = s.asid
	t.clock = s.clock
	t.clockBase = s.clockBase
	t.misses = s.misses
	t.flushes = s.flushes
	t.dropMemo()
}

// Resident reports whether page pn currently has a valid entry.
func (t *TLB) Resident(pn uint64) bool {
	for _, e := range t.sets[t.setOf(pn)] {
		if e.valid && e.pn == pn {
			return true
		}
	}
	return false
}

// Retint is the full paper §2.2 re-tinting operation: update the page-table
// entries for [base, base+size) and flush the TLB entries of every page that
// changed. It returns the number of pages whose entries were rewritten.
func Retint(pt *PageTable, t *TLB, base memory.Addr, size uint64, id tint.Tint) int {
	changed := pt.SetTintRange(base, size, id)
	for _, pn := range changed {
		t.FlushPage(pn)
	}
	return len(changed)
}
