// Package vm implements the virtual-memory substrate column caching rides
// on: a page table whose entries carry a tint, and a set-associative TLB
// that caches those entries. This is the first of the paper's three hardware
// modifications — "the TLB must be modified to store the mapping
// information" (paper §2.1) — plus the page-table plumbing needed to re-tint
// regions and account for the flushes that re-tinting requires (paper §2.2).
package vm

import (
	"colcache/internal/memory"
	"colcache/internal/tint"
)

// PTE is a page-table entry. The simulator does not translate addresses
// (traces are physical); the entry exists to carry per-page cache-management
// state, exactly the extension the paper makes to a conventional PTE.
type PTE struct {
	Tint     tint.Tint
	Uncached bool // bypass the cache entirely, like the existing uncached bit
}

// PageTable maps page numbers to PTEs. Pages without an explicit entry have
// the default tint, so the table only stores exceptions.
type PageTable struct {
	g       memory.Geometry
	entries map[uint64]PTE
	writes  int64 // entry updates, the paper's Fig. 3 cost metric
}

// NewPageTable returns an empty page table under geometry g.
func NewPageTable(g memory.Geometry) *PageTable {
	return &PageTable{g: g, entries: make(map[uint64]PTE)}
}

// Geometry returns the table's geometry.
func (pt *PageTable) Geometry() memory.Geometry { return pt.g }

// Lookup returns the PTE for the page containing addr.
func (pt *PageTable) Lookup(addr memory.Addr) PTE {
	return pt.entries[pt.g.PageNumber(addr)]
}

// LookupPage returns the PTE for page number pn.
func (pt *PageTable) LookupPage(pn uint64) PTE { return pt.entries[pn] }

// TintOf returns the tint governing addr's page. Like Lookup it is
// side-effect free — no entry is created and no counter moves — so the
// inspection layer can attribute every resident cache line to its tint
// without perturbing the simulation or the Fig. 3 write accounting.
func (pt *PageTable) TintOf(addr memory.Addr) tint.Tint {
	return pt.entries[pt.g.PageNumber(addr)].Tint
}

// SetTintPage re-tints a single page and reports whether the entry changed.
func (pt *PageTable) SetTintPage(pn uint64, id tint.Tint) bool {
	e := pt.entries[pn]
	if e.Tint == id {
		return false
	}
	e.Tint = id
	pt.entries[pn] = e
	pt.writes++
	return true
}

// SetTintRange re-tints every page overlapping [base, base+size) and returns
// the page numbers whose entries actually changed — the caller must flush or
// update those pages' TLB entries (paper §2.2).
func (pt *PageTable) SetTintRange(base memory.Addr, size uint64, id tint.Tint) []uint64 {
	var changed []uint64
	for _, pn := range pt.g.PagesCovering(base, size) {
		if pt.SetTintPage(pn, id) {
			changed = append(changed, pn)
		}
	}
	return changed
}

// SetUncachedRange marks pages overlapping [base, base+size) as uncached.
func (pt *PageTable) SetUncachedRange(base memory.Addr, size uint64, uncached bool) []uint64 {
	var changed []uint64
	for _, pn := range pt.g.PagesCovering(base, size) {
		e := pt.entries[pn]
		if e.Uncached == uncached {
			continue
		}
		e.Uncached = uncached
		pt.entries[pn] = e
		pt.writes++
		changed = append(changed, pn)
	}
	return changed
}

// Writes returns the number of page-table entry updates performed; the
// Fig. 3 experiment compares this count for tint-based vs raw-bit-vector
// remapping schemes.
func (pt *PageTable) Writes() int64 { return pt.writes }

// EntryCount returns how many pages carry non-default entries.
func (pt *PageTable) EntryCount() int { return len(pt.entries) }

// Reset drops all entries and counters.
func (pt *PageTable) Reset() {
	pt.entries = make(map[uint64]PTE)
	pt.writes = 0
}
