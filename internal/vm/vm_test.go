package vm

import (
	"testing"
	"testing/quick"

	"colcache/internal/memory"
	"colcache/internal/tint"
)

var g = memory.MustGeometry(32, 256)

func TestPageTableDefaults(t *testing.T) {
	pt := NewPageTable(g)
	e := pt.Lookup(0x1234)
	if e.Tint != tint.Default || e.Uncached {
		t.Errorf("default PTE=%+v", e)
	}
	if pt.EntryCount() != 0 {
		t.Error("default lookup materialized an entry")
	}
}

func TestSetTintRange(t *testing.T) {
	pt := NewPageTable(g)
	changed := pt.SetTintRange(100, 300, tint.Tint(5)) // pages 0 and 1
	if len(changed) != 2 || changed[0] != 0 || changed[1] != 1 {
		t.Errorf("changed=%v", changed)
	}
	if pt.Lookup(150).Tint != 5 || pt.Lookup(300).Tint != 5 {
		t.Error("tint not applied")
	}
	if pt.Lookup(512).Tint != tint.Default {
		t.Error("tint leaked past range")
	}
	// Idempotent: re-tinting to the same value changes nothing.
	if got := pt.SetTintRange(100, 300, tint.Tint(5)); len(got) != 0 {
		t.Errorf("idempotent retint changed %v", got)
	}
	if pt.Writes() != 2 {
		t.Errorf("writes=%d want 2", pt.Writes())
	}
}

func TestSetUncachedRange(t *testing.T) {
	pt := NewPageTable(g)
	pt.SetUncachedRange(0, 256, true)
	if !pt.Lookup(10).Uncached {
		t.Error("uncached bit not set")
	}
	if got := pt.SetUncachedRange(0, 256, true); len(got) != 0 {
		t.Error("idempotent set changed entries")
	}
	pt.SetUncachedRange(0, 256, false)
	if pt.Lookup(10).Uncached {
		t.Error("uncached bit not cleared")
	}
}

func TestPageTableReset(t *testing.T) {
	pt := NewPageTable(g)
	pt.SetTintPage(3, 7)
	pt.Reset()
	if pt.EntryCount() != 0 || pt.Writes() != 0 {
		t.Error("reset incomplete")
	}
}

func TestTLBConfigValidation(t *testing.T) {
	pt := NewPageTable(g)
	bad := []TLBConfig{
		{Entries: 0, Ways: 1},
		{Entries: 3, Ways: 1},
		{Entries: 8, Ways: 0},
		{Entries: 8, Ways: 3},
		{Entries: 24, Ways: 2},
	}
	for _, c := range bad {
		if _, err := NewTLB(c, pt); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if _, err := NewTLB(TLBConfig{Entries: 8, Ways: 2}, pt); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestTLBHitMiss(t *testing.T) {
	pt := NewPageTable(g)
	pt.SetTintPage(0, 3)
	tlb := MustNewTLB(TLBConfig{Entries: 4, Ways: 4}, pt)

	pte, hit := tlb.Lookup(10)
	if hit {
		t.Error("cold lookup hit")
	}
	if pte.Tint != 3 {
		t.Errorf("walked tint=%d want 3", pte.Tint)
	}
	if _, hit := tlb.Lookup(20); !hit {
		t.Error("second lookup to same page missed")
	}
	s := tlb.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats=%+v", s)
	}
}

func TestTLBCachesStaleEntry(t *testing.T) {
	// A TLB entry installed before a page-table change keeps serving the old
	// tint until flushed — exactly why re-tinting must flush (paper §2.2).
	pt := NewPageTable(g)
	tlb := MustNewTLB(TLBConfig{Entries: 4, Ways: 4}, pt)
	tlb.Lookup(0) // installs tint=Default
	pt.SetTintPage(0, 9)
	if pte, hit := tlb.Lookup(0); !hit || pte.Tint != tint.Default {
		t.Errorf("expected stale entry, got hit=%v tint=%d", hit, pte.Tint)
	}
	tlb.FlushPage(0)
	if pte, hit := tlb.Lookup(0); hit || pte.Tint != 9 {
		t.Errorf("after flush: hit=%v tint=%d", hit, pte.Tint)
	}
}

func TestTLBEvictionLRU(t *testing.T) {
	pt := NewPageTable(g)
	tlb := MustNewTLB(TLBConfig{Entries: 2, Ways: 2}, pt)
	tlb.Lookup(0 * 256)
	tlb.Lookup(1 * 256)
	tlb.Lookup(0 * 256) // page 0 now MRU
	tlb.Lookup(2 * 256) // evicts page 1
	if !tlb.Resident(0) {
		t.Error("MRU page evicted")
	}
	if tlb.Resident(1) {
		t.Error("LRU page survived")
	}
}

func TestTLBFlushAll(t *testing.T) {
	pt := NewPageTable(g)
	tlb := MustNewTLB(TLBConfig{Entries: 8, Ways: 2}, pt)
	tlb.Lookup(0)
	tlb.Lookup(1000)
	tlb.FlushAll()
	if tlb.Resident(0) || tlb.Resident(g.PageNumber(1000)) {
		t.Error("FlushAll left entries")
	}
}

func TestRetintFlushesChangedPages(t *testing.T) {
	pt := NewPageTable(g)
	tlb := MustNewTLB(TLBConfig{Entries: 8, Ways: 8}, pt)
	tlb.Lookup(0)
	tlb.Lookup(256)
	tlb.Lookup(512)
	n := Retint(pt, tlb, 0, 512, tint.Tint(4)) // pages 0,1
	if n != 2 {
		t.Errorf("retinted %d pages want 2", n)
	}
	if tlb.Resident(0) || tlb.Resident(1) {
		t.Error("changed pages not flushed")
	}
	if !tlb.Resident(2) {
		t.Error("unchanged page flushed")
	}
	if pte, _ := tlb.Lookup(0); pte.Tint != 4 {
		t.Errorf("refill tint=%d", pte.Tint)
	}
}

// Property: the TLB is a transparent cache of the page table — a lookup
// always returns exactly what a direct page-table walk would, provided
// changed pages are flushed (Retint does this).
func TestTLBTransparencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		pt := NewPageTable(g)
		tlb := MustNewTLB(TLBConfig{Entries: 4, Ways: 2}, pt)
		for _, op := range ops {
			page := uint64(op % 32)
			addr := page * 256
			switch (op / 32) % 3 {
			case 0:
				pte, _ := tlb.Lookup(addr)
				if pte != pt.LookupPage(page) {
					return false
				}
			case 1:
				Retint(pt, tlb, addr, 256, tint.Tint(op%7))
			case 2:
				tlb.FlushAll()
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestASIDTagging(t *testing.T) {
	pt := NewPageTable(g)
	tlb := MustNewTLB(TLBConfig{Entries: 8, Ways: 8}, pt)
	// Install page 0 under ASID 0.
	tlb.Lookup(0)
	if _, hit := tlb.Lookup(0); !hit {
		t.Fatal("warm lookup missed")
	}
	// Switch ASID: the entry stops matching (no flush needed)...
	tlb.SetASID(1)
	if _, hit := tlb.Lookup(0); hit {
		t.Error("entry matched across ASIDs")
	}
	// ...but switching back finds the original entry still resident.
	tlb.SetASID(0)
	if _, hit := tlb.Lookup(0); !hit {
		t.Error("original ASID's entry lost")
	}
	if tlb.ASID() != 0 {
		t.Errorf("ASID=%d", tlb.ASID())
	}
}

func TestASIDAvoidsFlushCost(t *testing.T) {
	pt := NewPageTable(g)
	// Two "processes" alternating over the same 4 pages each, 16-entry TLB.
	flushTLB := MustNewTLB(TLBConfig{Entries: 16, Ways: 16}, pt)
	asidTLB := MustNewTLB(TLBConfig{Entries: 16, Ways: 16}, pt)
	for round := 0; round < 10; round++ {
		for proc := 0; proc < 2; proc++ {
			flushTLB.FlushAll()
			asidTLB.SetASID(uint16(proc))
			for p := 0; p < 4; p++ {
				addr := uint64(proc)<<20 + uint64(p)*256
				flushTLB.Lookup(addr)
				asidTLB.Lookup(addr)
			}
		}
	}
	if f, a := flushTLB.Stats().Misses, asidTLB.Stats().Misses; a >= f {
		t.Errorf("ASID misses %d not fewer than flush misses %d", a, f)
	}
	// With 16 entries and 8 live pages, ASIDs settle at compulsory misses.
	if a := asidTLB.Stats().Misses; a != 8 {
		t.Errorf("ASID misses=%d want 8 (compulsory only)", a)
	}
}

func TestFlushPageDropsAllASIDCopies(t *testing.T) {
	// The same page can be resident under several ASIDs at once. A re-tint
	// must drop every copy: a first-match-only flush leaves the other ASID
	// serving the stale tint after it switches back in. (Regression test for
	// the bug found by the differential conformance oracle.)
	pt := NewPageTable(g)
	tlb := MustNewTLB(TLBConfig{Entries: 8, Ways: 4}, pt)
	tlb.Lookup(0) // ASID 0 caches page 0
	tlb.SetASID(1)
	tlb.Lookup(0) // ASID 1 caches page 0

	flushesBefore := tlb.Stats().Flushes
	pt.SetTintPage(0, 9)
	if !tlb.FlushPage(0) {
		t.Fatal("FlushPage found nothing to drop")
	}
	if got := tlb.Stats().Flushes - flushesBefore; got != 2 {
		t.Fatalf("FlushPage dropped %d entries, want 2 (one per ASID)", got)
	}
	if pte, hit := tlb.Lookup(0); hit || pte.Tint != 9 {
		t.Fatalf("ASID 1 after flush: hit=%v tint=%d, want re-walked tint 9", hit, pte.Tint)
	}
	tlb.SetASID(0)
	if pte, hit := tlb.Lookup(0); hit || pte.Tint != 9 {
		t.Fatalf("ASID 0 after flush: hit=%v tint=%d, want re-walked tint 9", hit, pte.Tint)
	}
}
