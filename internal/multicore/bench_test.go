package multicore

import (
	"fmt"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
)

// benchTraces builds n per-core synthetic traces with idct-like locality:
// block sweeps with periodic re-touches, disjoint 4GB windows per core.
func benchTraces(n, accesses int) []memtrace.Trace {
	traces := make([]memtrace.Trace, n)
	for i := range traces {
		tr := make(memtrace.Trace, accesses)
		state := uint64(i + 1)
		var addr uint64
		for k := range tr {
			// xorshift-driven mix of sequential sweeps and block re-touches
			state ^= state >> 12
			state ^= state << 25
			state ^= state >> 27
			if k%64 == 0 {
				addr = (state * 0x9e3779b97f4a7c15) % (1 << 18)
			}
			a := memtrace.Access{Addr: uint64(i)<<32 | (addr &^ 31), Op: memtrace.Read}
			if state&7 == 0 {
				a.Op = memtrace.Write
			}
			tr[k] = a
			addr += 32
		}
		traces[i] = tr
	}
	return traces
}

func benchMachine(b *testing.B, cores, accesses int) *Machine {
	b.Helper()
	m, err := New(Config{
		Geometry:    memory.MustGeometry(32, 4096),
		L1:          cache.Config{LineBytes: 32, NumSets: 16, NumWays: 2},
		L2:          cache.Config{LineBytes: 32, NumSets: 64, NumWays: 8},
		Timing:      memsys.DefaultTiming,
		L2HitCycles: 6,
		Traces:      benchTraces(cores, accesses),
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkStepper measures the deterministic stepper's end-to-end
// throughput: TLB, tint mask, L1 with way memoization, MSI bus, shared L2.
// ns/op is per simulated access.
func BenchmarkStepper(b *testing.B) {
	for _, cores := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			const accesses = 100000
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := benchMachine(b, cores, accesses)
				b.StartTimer()
				if err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.N *= accesses * cores // report per-access cost
		})
	}
}
