package multicore

import (
	"math/rand"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
)

// synthTrace builds a deterministic mixed read/write trace over [lo, hi),
// locality-biased so lines are revisited and contested.
func synthTrace(seed int64, n int, lo, hi uint64) memtrace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := make(memtrace.Trace, 0, n)
	addr := lo
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0: // jump anywhere in the window
			addr = lo + uint64(rng.Int63n(int64(hi-lo)))
		case 1: // short stride
			addr += 8
			if addr >= hi {
				addr = lo
			}
		default: // revisit a recent neighborhood
			addr = lo + (addr-lo+uint64(rng.Intn(64)))%(hi-lo)
		}
		op := memtrace.Read
		if rng.Intn(3) == 0 {
			op = memtrace.Write
		}
		tr = append(tr, memtrace.Access{Addr: addr, Op: op, Think: uint32(rng.Intn(3))})
	}
	return tr
}

// The acceptance sweep: hundreds of seeded random machines — core counts,
// geometries, policies, partition shapes and sharing patterns all drawn from
// the seed — run to completion with per-step invariant checking on. Every
// step of every case re-verifies SWMR, stale-sharer freedom, state/dirty
// consistency and the writeback ledger.
func TestInvariantSweep(t *testing.T) {
	cases := 500
	if testing.Short() {
		cases = 60
	}
	policies := []replacement.Kind{replacement.LRU, replacement.TreePLRU, replacement.FIFO, replacement.Random}
	for seed := int64(1); seed <= int64(cases); seed++ {
		rng := rand.New(rand.NewSource(seed))
		cores := 2 + rng.Intn(3)
		lineBytes := 16 << rng.Intn(2)
		l1Sets := 4 << rng.Intn(2)
		l1Ways := 1 << rng.Intn(3)
		l2Sets := l1Sets * 2
		l2Ways := 2 << rng.Intn(2)

		// A small shared window forces cross-core contention; each core also
		// gets a private window so evictions and refills churn.
		sharedLo, sharedHi := uint64(0), uint64(512+rng.Intn(1024))
		var traces []memtrace.Trace
		for c := 0; c < cores; c++ {
			n := 128 + rng.Intn(128)
			privLo := 0x10000 * uint64(c+1)
			mixed := make(memtrace.Trace, 0, 2*n)
			shared := synthTrace(rng.Int63(), n, sharedLo, sharedHi)
			private := synthTrace(rng.Int63(), n, privLo, privLo+0x800)
			for i := 0; i < n; i++ {
				mixed = append(mixed, shared[i], private[i])
			}
			traces = append(traces, mixed)
		}

		cfg := Config{
			Geometry: memory.MustGeometry(lineBytes, 1024),
			L1: cache.Config{
				LineBytes: lineBytes, NumSets: l1Sets, NumWays: l1Ways,
				Policy: policies[rng.Intn(len(policies))],
			},
			L2: cache.Config{
				LineBytes: lineBytes, NumSets: l2Sets, NumWays: l2Ways,
				Policy: policies[rng.Intn(len(policies))],
			},
			Timing:      memsys.DefaultTiming,
			L2HitCycles: 1 + rng.Intn(6),
			Traces:      traces,
			Checks:      true,
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("seed %d: New: %v", seed, err)
		}
		// Half the cases partition the shared L2 per core; a third of those
		// repartition mid-run (the paper's cheap SetMask write).
		partitioned := rng.Intn(2) == 0 && l2Ways >= cores
		if partitioned {
			per := l2Ways / cores
			for c := 0; c < cores; c++ {
				hi := (c + 1) * per
				if c == cores-1 {
					hi = l2Ways
				}
				if err := m.SetL2Mask(c, replacement.Range(c*per, hi)); err != nil {
					t.Fatalf("seed %d: SetL2Mask: %v", seed, err)
				}
			}
		}
		remapAt := -1
		if partitioned && rng.Intn(3) == 0 {
			remapAt = 100 + rng.Intn(200)
		}
		steps := 0
		for {
			more, err := m.Step()
			if err != nil {
				t.Fatalf("seed %d (cores=%d l1=%dx%d l2=%dx%d %s/%s): step %d: %v",
					seed, cores, l1Sets, l1Ways, l2Sets, l2Ways, cfg.L1.Policy, cfg.L2.Policy, steps, err)
			}
			if !more {
				break
			}
			steps++
			if steps == remapAt {
				// Rotate the partition: every core's mask moves one column.
				for c := 0; c < cores; c++ {
					old := m.L2Mask(c)
					var rotated replacement.Mask
					for _, w := range old.Ways(l2Ways) {
						rotated |= replacement.Of((w + 1) % l2Ways)
					}
					if err := m.SetL2Mask(c, rotated); err != nil {
						t.Fatalf("seed %d: remap: %v", seed, err)
					}
				}
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: final: %v", seed, err)
		}
		st := m.Stats()
		if st.Bus.Reads == 0 || st.L2.Accesses == 0 {
			t.Fatalf("seed %d: degenerate case: no bus/L2 traffic", seed)
		}
	}
}

// The sweep must actually exercise the contested paths it claims to cover:
// across a handful of seeds, every class of bus transaction has to appear.
func TestSweepCoversBusTraffic(t *testing.T) {
	var total BusStats
	for seed := int64(1); seed <= 20; seed++ {
		m := MustNew(testConfig(
			synthTrace(seed, 400, 0, 0x600),
			synthTrace(seed+1000, 400, 0, 0x600),
			synthTrace(seed+2000, 400, 0, 0x600),
		))
		st := mustRun(t, m)
		total.Reads += st.Bus.Reads
		total.ReadXs += st.Bus.ReadXs
		total.Upgrades += st.Bus.Upgrades
		total.Invalidations += st.Bus.Invalidations
		total.Interventions += st.Bus.Interventions
		total.WritebackRaces += st.Bus.WritebackRaces
	}
	if total.Reads == 0 || total.ReadXs == 0 || total.Upgrades == 0 ||
		total.Invalidations == 0 || total.Interventions == 0 || total.WritebackRaces == 0 {
		t.Fatalf("bus transaction class never exercised: %+v", total)
	}
}
