package multicore

import (
	"reflect"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
	"colcache/internal/tint"
)

func testConfig(traces ...memtrace.Trace) Config {
	return Config{
		Geometry:    memory.MustGeometry(32, 1024),
		L1:          cache.Config{LineBytes: 32, NumSets: 8, NumWays: 2},
		L2:          cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
		Timing:      memsys.DefaultTiming,
		L2HitCycles: 4,
		Traces:      traces,
		Checks:      true,
	}
}

func read(addr uint64) memtrace.Access  { return memtrace.Access{Addr: addr, Op: memtrace.Read} }
func write(addr uint64) memtrace.Access { return memtrace.Access{Addr: addr, Op: memtrace.Write} }

func mustRun(t *testing.T, m *Machine) Stats {
	t.Helper()
	if err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	return m.Stats()
}

// A producer-consumer handoff: core 0 dirties a line, core 1 reads it. The
// read must trigger an intervention that flushes the modified data to the
// shared L2 and downgrades the producer's copy to clean Shared.
func TestIntervention(t *testing.T) {
	m := MustNew(testConfig(
		memtrace.Trace{write(0x100)},
		memtrace.Trace{read(0x40), read(0x100)},
	))
	st := mustRun(t, m)
	if st.Bus.Interventions != 1 {
		t.Fatalf("interventions = %d, want 1", st.Bus.Interventions)
	}
	if st.Cores[1].Interventions != 1 {
		t.Errorf("core 1 interventions = %d, want 1", st.Cores[1].Interventions)
	}
	// The producer's copy must survive, clean and Shared.
	w, ok := m.L1(0).Probe(0x100)
	if !ok {
		t.Fatal("producer lost its copy")
	}
	set, _ := m.L1(0).SetTagOf(0x100)
	if l := m.L1(0).LineAt(set, w); l.Dirty || l.Aux != StateShared {
		t.Errorf("producer copy dirty=%v state=%s, want clean Shared", l.Dirty, StateName(l.Aux))
	}
	// The flushed data landed in the L2, so the consumer's fetch hit there.
	if st.Cores[1].L2Misses != 1 { // the 0x40 fetch; 0x100 must hit
		t.Errorf("consumer L2 misses = %d, want 1 (only the private line)", st.Cores[1].L2Misses)
	}
	if st.DirtyCreated != 1 || st.DirtyRetired != 1 {
		t.Errorf("ledger created=%d retired=%d, want 1/1", st.DirtyCreated, st.DirtyRetired)
	}
}

// A write hit on a Shared line must upgrade without refetching and destroy
// the other sharers' copies.
func TestUpgradeInvalidatesSharers(t *testing.T) {
	m := MustNew(testConfig(
		memtrace.Trace{read(0x200), write(0x200)},
		memtrace.Trace{read(0x200)},
	))
	st := mustRun(t, m)
	if st.Bus.Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", st.Bus.Upgrades)
	}
	if st.Bus.Invalidations != 1 || st.Cores[1].InvalidationsRecv != 1 {
		t.Fatalf("invalidations bus=%d core1=%d, want 1/1", st.Bus.Invalidations, st.Cores[1].InvalidationsRecv)
	}
	if _, ok := m.L1(1).Probe(0x200); ok {
		t.Error("stale sharer survived the upgrade")
	}
	w, _ := m.L1(0).Probe(0x200)
	set, _ := m.L1(0).SetTagOf(0x200)
	if l := m.L1(0).LineAt(set, w); !l.Dirty || l.Aux != StateModified {
		t.Errorf("writer's copy dirty=%v state=%s, want Modified", l.Dirty, StateName(l.Aux))
	}
}

// Two cores writing the same line: the second write's BusRdX must flush the
// first writer's modified data (the writeback race) before invalidating it.
func TestWritebackRace(t *testing.T) {
	m := MustNew(testConfig(
		memtrace.Trace{write(0x300)},
		memtrace.Trace{read(0x40), write(0x300)},
	))
	st := mustRun(t, m)
	if st.Bus.WritebackRaces != 1 {
		t.Fatalf("writeback races = %d, want 1", st.Bus.WritebackRaces)
	}
	if _, ok := m.L1(0).Probe(0x300); ok {
		t.Error("first writer kept its copy past a BusRdX")
	}
	// Ownership moved: exactly one Modified copy remains, so the ledger
	// holds one outstanding dirty line.
	if st.DirtyCreated != 2 || st.DirtyRetired != 1 {
		t.Errorf("ledger created=%d retired=%d, want 2/1", st.DirtyCreated, st.DirtyRetired)
	}
}

// The stepper's arbitration is fixed: equal clocks resolve to the lowest
// core index, so identical machines interleave identically.
func TestDeterminism(t *testing.T) {
	mk := func() *Machine {
		return MustNew(testConfig(
			synthTrace(1, 400, 0x0, 0x800),
			synthTrace(2, 400, 0x400, 0xc00),
			synthTrace(3, 400, 0x0, 0xc00),
		))
	}
	a, b := mk(), mk()
	sa, sb := mustRun(t, a), mustRun(t, b)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("identical machines diverged:\n%+v\n%+v", sa, sb)
	}
	if snapA, snapB := a.L2().SnapshotSets(), b.L2().SnapshotSets(); !reflect.DeepEqual(snapA, snapB) {
		t.Fatal("identical machines left different L2 contents")
	}
}

// Per-core L2 column masks confine each core's shared-L2 footprint.
func TestL2Partitioning(t *testing.T) {
	m := MustNew(testConfig(
		synthTrace(4, 600, 0x0, 0x1000),
		synthTrace(5, 600, 0x2000, 0x3000), // disjoint addresses: no sharing
	))
	if err := m.SetL2Mask(0, replacement.Range(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetL2Mask(1, replacement.Range(2, 4)); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	l2 := m.L2()
	total := l2.ResidentLines()
	if total == 0 {
		t.Fatal("empty L2 after 1200 accesses")
	}
	inA := l2.ResidentInColumns(replacement.Range(0, 2))
	inB := l2.ResidentInColumns(replacement.Range(2, 4))
	if inA+inB != total {
		t.Fatalf("resident lines %d outside both partitions", total-inA-inB)
	}
	if inA == 0 || inB == 0 {
		t.Fatalf("one partition empty: A=%d B=%d", inA, inB)
	}
}

// The L2 observer sees every shared-L2 access attributed to the issuing
// core's L2 tint — the hook the adaptive controller rides.
type recordingObserver struct {
	perTint map[tint.Tint]int64
}

func (o *recordingObserver) ObserveAccess(id tint.Tint, _ memory.Addr, _ bool) {
	o.perTint[id]++
}

func TestL2Observer(t *testing.T) {
	m := MustNew(testConfig(
		synthTrace(6, 300, 0x0, 0x1000),
		synthTrace(7, 300, 0x0, 0x1000),
	))
	obs := &recordingObserver{perTint: make(map[tint.Tint]int64)}
	m.SetL2Observer(obs)
	st := mustRun(t, m)
	for i := 0; i < m.NumCores(); i++ {
		if obs.perTint[m.L2Tint(i)] != st.Cores[i].L2Accesses {
			t.Errorf("core %d: observer saw %d accesses, stats say %d",
				i, obs.perTint[m.L2Tint(i)], st.Cores[i].L2Accesses)
		}
	}
}

// MapRegion applies a column mask inside one core's private L1 without
// affecting the others.
func TestMapRegionPerCore(t *testing.T) {
	m := MustNew(testConfig(
		synthTrace(8, 500, 0x0, 0x400),
		synthTrace(9, 500, 0x0, 0x400),
	))
	if _, err := m.MapRegion(0, memory.Region{Name: "r", Base: 0, Size: 0x400}, replacement.Of(0)); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	if n := m.L1(0).ResidentInColumns(replacement.Of(1)); n != 0 {
		t.Errorf("core 0 leaked %d lines outside its single column", n)
	}
	if n := m.L1(1).ResidentInColumns(replacement.Of(1)); n == 0 {
		t.Error("core 1's unrestricted L1 never used way 1")
	}
}

// The checker must reject hand-broken protocol state, or the sweep proves
// nothing.
func TestCheckerCatchesViolations(t *testing.T) {
	m := MustNew(testConfig(memtrace.Trace{write(0x100)}, memtrace.Trace{read(0x40)}))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	set, _ := m.L1(0).SetTagOf(0x100)
	w, _ := m.L1(0).Probe(0x100)

	// Dirty line downgraded without clearing dirty: dirty ⇔ Modified broken.
	m.L1(0).SetAux(set, w, StateShared)
	if err := m.CheckInvariants(); err == nil {
		t.Error("dirty Shared line not rejected")
	}
	m.L1(0).SetAux(set, w, StateModified)

	// A second Modified copy of the same line: SWMR broken.
	m.L1(1).Write(0x100, replacement.All(2))
	set1, _ := m.L1(1).SetTagOf(0x100)
	w1, _ := m.L1(1).Probe(0x100)
	m.L1(1).SetAux(set1, w1, StateModified)
	if err := m.CheckInvariants(); err == nil {
		t.Error("two Modified copies not rejected")
	}
}

func TestConfigErrors(t *testing.T) {
	base := testConfig(memtrace.Trace{read(0)})
	for name, mutate := range map[string]func(*Config){
		"no traces":        func(c *Config) { c.Traces = nil },
		"line mismatch":    func(c *Config) { c.L2.LineBytes = 64 },
		"geometry":         func(c *Config) { c.L1.LineBytes = 64; c.L2.LineBytes = 64 },
		"write-through L1": func(c *Config) { c.L1.Write = cache.WriteThroughNoAllocate },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}
