package multicore

import (
	"fmt"

	"colcache/internal/memory"
)

// Oracle-style invariant checking, in the spirit of internal/oracle: the
// machine keeps a tiny shadow model — a global write version per line and
// the version each core's copy carries — and after every step re-derives the
// properties the MSI protocol is supposed to guarantee:
//
//   - SWMR: a line in Modified anywhere has exactly one valid copy anywhere.
//   - No stale sharers: a read hit always observes the line's latest write
//     version; a copy that survived a remote write would fail this.
//   - State consistency: every valid line is Shared or Modified; dirty ⇔
//     Modified.
//   - Writeback ledger: every clean→Modified transition creates a dirty
//     line, every writeback retires one, and the books balance against the
//     lines currently in M — modified data is never dropped or duplicated.

// checker is the shadow model. It exists only when Config.Checks is set.
type checker struct {
	version map[memory.Addr]uint64   // line → latest write version (0 = never written)
	copies  []map[memory.Addr]uint64 // per core: line → version its copy carries
}

func newChecker(cores int) *checker {
	ch := &checker{version: make(map[memory.Addr]uint64)}
	for i := 0; i < cores; i++ {
		ch.copies = append(ch.copies, make(map[memory.Addr]uint64))
	}
	return ch
}

// noteWrite records that core c now holds the newest version of lineAddr.
func (m *Machine) noteWrite(c *core, lineAddr memory.Addr) {
	if m.check == nil {
		return
	}
	m.check.version[lineAddr]++
	m.check.copies[c.id][lineAddr] = m.check.version[lineAddr]
}

// noteFill records that core c fetched the current version of lineAddr.
func (m *Machine) noteFill(c *core, lineAddr memory.Addr) {
	if m.check == nil {
		return
	}
	m.check.copies[c.id][lineAddr] = m.check.version[lineAddr]
}

// noteDrop records that core c no longer holds lineAddr.
func (m *Machine) noteDrop(c *core, lineAddr memory.Addr) {
	if m.check == nil {
		return
	}
	delete(m.check.copies[c.id], lineAddr)
}

// noteReadHit verifies a read hit against the shadow model: the copy must
// exist and carry the line's latest write version.
func (m *Machine) noteReadHit(c *core, lineAddr memory.Addr) {
	if m.check == nil || m.violation != nil {
		return
	}
	have, ok := m.check.copies[c.id][lineAddr]
	if !ok {
		m.violation = fmt.Errorf("multicore: core %d read hit on line %#x with no recorded copy", c.id, lineAddr)
		return
	}
	if want := m.check.version[lineAddr]; have != want {
		m.violation = fmt.Errorf("multicore: core %d read hit on stale line %#x (copy version %d, latest write %d)",
			c.id, lineAddr, have, want)
	}
}

// checkStep runs the structural invariants after a step.
func (m *Machine) checkStep() error {
	if m.violation != nil {
		return m.violation
	}
	return m.CheckInvariants()
}

// CheckInvariants walks every L1 line and verifies SWMR, state/dirty
// consistency and the writeback ledger. It can be called at any time, with
// or without Config.Checks; it never perturbs the simulation.
func (m *Machine) CheckInvariants() error {
	type holder struct {
		valid    int
		modified int
	}
	lines := make(map[memory.Addr]*holder)
	var dirtyNow int64
	for _, c := range m.cores {
		cfg := c.l1.Config()
		for s := 0; s < cfg.NumSets; s++ {
			for w := 0; w < cfg.NumWays; w++ {
				l := c.l1.LineAt(s, w)
				if !l.Valid {
					if l.Aux != StateInvalid {
						return fmt.Errorf("multicore: core %d set %d way %d: invalid line carries state %s",
							c.id, s, w, StateName(l.Aux))
					}
					continue
				}
				if l.Aux != StateShared && l.Aux != StateModified {
					return fmt.Errorf("multicore: core %d set %d way %d: valid line in state %s",
						c.id, s, w, StateName(l.Aux))
				}
				if l.Dirty != (l.Aux == StateModified) {
					return fmt.Errorf("multicore: core %d set %d way %d: dirty=%v disagrees with state %s",
						c.id, s, w, l.Dirty, StateName(l.Aux))
				}
				if l.Dirty {
					dirtyNow++
				}
				addr := c.l1.AddrOfTag(s, l.Tag)
				h := lines[addr]
				if h == nil {
					h = &holder{}
					lines[addr] = h
				}
				h.valid++
				if l.Aux == StateModified {
					h.modified++
				}
			}
		}
	}
	for addr, h := range lines {
		if h.modified > 1 {
			return fmt.Errorf("multicore: line %#x is Modified in %d cores", addr, h.modified)
		}
		if h.modified == 1 && h.valid > 1 {
			return fmt.Errorf("multicore: line %#x is Modified with %d valid copies (SWMR violated)", addr, h.valid)
		}
	}
	if m.dirtyCreated != m.dirtyRetired+dirtyNow {
		return fmt.Errorf("multicore: writeback ledger broken: created %d != retired %d + resident dirty %d",
			m.dirtyCreated, m.dirtyRetired, dirtyNow)
	}
	return nil
}
