// Package multicore simulates N cores, each replaying its own memory trace
// through a private L1 column cache, connected by a snooping write-invalidate
// MSI bus to a shared, column-partitioned L2.
//
// The private L1s reuse internal/cache unchanged; the MSI line state rides in
// the cache's auxiliary per-line byte (the seam added for this package), so
// the coherence controller lives entirely above the cache. Column masks apply
// at both levels: each core has its own tint table / page table / TLB
// governing its L1, and the shared L2 is partitioned by a per-core column
// mask held in a second tint table — the arena the adaptive controller
// (internal/controller) can steer at runtime.
//
// The default stepper (Run/RunContext) is serial and deterministic: each
// step picks the core with the smallest local cycle count (ties break to
// the lowest core index — fixed round-robin arbitration) and executes its
// next trace access to completion, including every bus transaction it
// triggers. The epoch-parallel stepper (RunParallel, see epoch.go) runs
// each core's lookahead on its own goroutine and replays the buffered bus
// transactions in exactly that serial arbitration order at epoch barriers,
// so its results are bit-identical to the serial stepper's for any epoch
// length. Runs are therefore reproducible bit-for-bit at any host
// parallelism either way; the experiment runner's -jobs knob only fans out
// across independent machines.
package multicore

import (
	"fmt"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
	"colcache/internal/tint"
	"colcache/internal/vm"
)

// MSI line states, stored in the L1's auxiliary per-line byte. Invalid is
// zero so a line the cache has just filled, invalidated or flushed reads as
// Invalid until the bus transaction that moved it assigns its real state —
// stale protocol state can never outlive the line it described.
const (
	StateInvalid uint8 = iota
	StateShared
	StateModified
)

// StateName names an MSI state for diagnostics.
func StateName(s uint8) string {
	switch s {
	case StateInvalid:
		return "I"
	case StateShared:
		return "S"
	case StateModified:
		return "M"
	default:
		return fmt.Sprintf("?%d", s)
	}
}

// Config assembles a Machine.
type Config struct {
	Geometry memory.Geometry
	L1       cache.Config // one private column cache per core
	L2       cache.Config // the shared column-partitioned L2
	TLB      vm.TLBConfig
	Timing   memsys.Timing
	// L2HitCycles is charged on every L2 probe; an L2 miss pays the
	// timing's MissPenalty on top, like memsys.EnableL2.
	L2HitCycles int
	// Traces holds one reference stream per core; len(Traces) is the core
	// count.
	Traces []memtrace.Trace
	// Checks enables per-step coherence invariant verification: SWMR,
	// stale-sharer detection, state/dirty consistency and the writeback
	// ledger. It walks every L1 line each step, so it is for tests and
	// conformance sweeps, not for measurement runs.
	Checks bool
}

// core is one simulated CPU: private L1 + tint table + page table + TLB,
// replaying its own trace.
type core struct {
	id    int
	l1    *cache.Cache
	tints *tint.Table
	pt    *vm.PageTable
	tlb   *vm.TLB
	trace memtrace.Trace
	pos   int

	l2tint tint.Tint // this core's tint in the shared L2's table

	instructions int64
	cycles       int64
	uncachedAcc  int64
	l2Accesses   int64
	l2Misses     int64

	invalidationsRecv int64
	interventions     int64
	upgrades          int64
}

// CoreStats snapshots one core's counters.
type CoreStats struct {
	Instructions     int64
	Cycles           int64
	MemAccesses      int64
	UncachedAccesses int64
	L1               cache.Stats
	TLB              vm.TLBStats
	L2Accesses       int64 // this core's demand probes of the shared L2
	L2Misses         int64
	// Coherence activity seen from this core's side of the bus.
	InvalidationsRecv int64 // copies this core lost to remote writes
	Interventions     int64 // this core's read misses served by a remote M copy
	Upgrades          int64 // this core's S→M promotions (BusUpgr, no data transfer)
}

// CPI returns cycles per instruction for the core.
func (s CoreStats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// L2MissRate returns the core's shared-L2 miss rate, or 0.
func (s CoreStats) L2MissRate() float64 {
	if s.L2Accesses == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(s.L2Accesses)
}

// BusStats counts coherence traffic on the shared bus.
type BusStats struct {
	Reads          int64 // BusRd: read misses broadcast to the other L1s
	ReadXs         int64 // BusRdX: write misses claiming exclusive ownership
	Upgrades       int64 // BusUpgr: write hits on Shared lines
	Invalidations  int64 // remote copies dropped by BusRdX/BusUpgr
	Interventions  int64 // remote M copies that supplied data and downgraded to S
	WritebackRaces int64 // remote M copies flushed by an exclusive request before invalidation
}

// Stats aggregates the whole machine.
type Stats struct {
	Cores        []CoreStats
	Bus          BusStats
	L2           cache.Stats
	Instructions int64 // sum over cores
	Cycles       int64 // max over cores: the co-run's makespan
	// Writeback ledger: every clean→M transition creates a dirty line,
	// every writeback (eviction, intervention, invalidation race) retires
	// one. Created == Retired + lines currently in M.
	DirtyCreated int64
	DirtyRetired int64
}

// CPI returns aggregate cycles (makespan) per aggregate instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// Machine is the multicore simulator. Like memsys.System it is not safe for
// concurrent use: determinism comes from the serial stepper.
type Machine struct {
	g       memory.Geometry
	timing  memsys.Timing
	cores   []*core
	l2      *cache.Cache
	l2tints *tint.Table
	l2Hit   int

	observer memsys.AccessObserver

	// Inspection hook (SetInspector): fired at exact global access counts
	// by the serial stepper's RunContext. RunParallelContext falls back to
	// the serial stepper while an inspector is attached — epoch barriers
	// land at epoch-length-dependent access counts, so only the serial
	// schedule can hit the exact deterministic stride positions that make
	// frame sequences bit-identical across entry points.
	inspectEvery int64
	inspectFn    func(done int64)

	dirtyCreated int64
	dirtyRetired int64
	bus          BusStats

	check     *checker
	violation error

	// Deterministic L2 repartition schedule: events fire inside l2Demand at
	// exact shared-L2 access counts, so the serial and epoch-parallel
	// steppers apply them at the same global sequence point.
	remapSched []RemapEvent
	remapPos   int
	l2Demands  int64

	// Epoch-parallel stepper state (see epoch.go).
	estats EpochStats

	// testMergeHook, when non-nil, sees every buffered record just before
	// the barrier merge applies it. Tests inject coherence-breaking
	// mutations through it to prove the invariant checker sees through the
	// parallel path.
	testMergeHook func(coreIdx int, r *epochRec)
}

// RemapEvent rewrites core Core's shared-L2 column mask immediately after
// the machine's AfterL2Accesses-th shared-L2 demand access. A schedule of
// these events is the deterministic mid-run repartition mechanism: the
// trigger is a point in the global L2 access order, which the serial and
// epoch-parallel steppers produce identically, so a schedule never breaks
// their equivalence the way a wall-clock or per-step trigger would.
type RemapEvent struct {
	AfterL2Accesses int64
	Core            int
	Mask            replacement.Mask
}

// SetRemapSchedule installs the deterministic repartition schedule. Events
// must be sorted by AfterL2Accesses (ties fire in slice order) and name
// in-range cores and non-empty masks within the L2's way count. Call before
// running; replacing the schedule mid-run is not supported.
func (m *Machine) SetRemapSchedule(evs []RemapEvent) error {
	ways := m.l2.Config().NumWays
	for i, ev := range evs {
		if ev.AfterL2Accesses < 1 {
			return fmt.Errorf("multicore: remap[%d]: AfterL2Accesses %d < 1", i, ev.AfterL2Accesses)
		}
		if i > 0 && ev.AfterL2Accesses < evs[i-1].AfterL2Accesses {
			return fmt.Errorf("multicore: remap[%d]: schedule not sorted", i)
		}
		if ev.Core < 0 || ev.Core >= len(m.cores) {
			return fmt.Errorf("multicore: remap[%d]: core %d out of range", i, ev.Core)
		}
		if ev.Mask == 0 || ev.Mask&^replacement.All(ways) != 0 {
			return fmt.Errorf("multicore: remap[%d]: mask %s outside the L2's %d ways", i, ev.Mask, ways)
		}
	}
	m.remapSched = evs
	m.remapPos = 0
	return nil
}

// New builds a Machine from cfg.
func New(cfg Config) (*Machine, error) {
	if len(cfg.Traces) == 0 {
		return nil, fmt.Errorf("multicore: no core traces")
	}
	if cfg.Geometry.LineBytes != cfg.L1.LineBytes {
		return nil, fmt.Errorf("multicore: geometry line size %d != L1 line size %d",
			cfg.Geometry.LineBytes, cfg.L1.LineBytes)
	}
	if cfg.L2.LineBytes != cfg.L1.LineBytes {
		return nil, fmt.Errorf("multicore: L2 line size %d != L1 line size %d",
			cfg.L2.LineBytes, cfg.L1.LineBytes)
	}
	if cfg.L1.Write != cache.WriteBackAllocate {
		return nil, fmt.Errorf("multicore: the MSI protocol needs a write-back/allocate L1, got %s", cfg.L1.Write)
	}
	tlbCfg := cfg.TLB
	if tlbCfg.Entries == 0 {
		tlbCfg = vm.DefaultTLBConfig
	}
	l2c, err := cache.New(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("multicore: L2: %w", err)
	}
	m := &Machine{
		g:       cfg.Geometry,
		timing:  cfg.Timing,
		l2:      l2c,
		l2tints: tint.NewTable(cfg.L2.NumWays),
		l2Hit:   cfg.L2HitCycles,
	}
	for i, tr := range cfg.Traces {
		l1, err := cache.New(cfg.L1)
		if err != nil {
			return nil, fmt.Errorf("multicore: core %d L1: %w", i, err)
		}
		pt := vm.NewPageTable(cfg.Geometry)
		tlb, err := vm.NewTLB(tlbCfg, pt)
		if err != nil {
			return nil, fmt.Errorf("multicore: core %d TLB: %w", i, err)
		}
		m.cores = append(m.cores, &core{
			id:     i,
			l1:     l1,
			tints:  tint.NewTable(cfg.L1.NumWays),
			pt:     pt,
			tlb:    tlb,
			trace:  tr,
			l2tint: m.l2tints.NewTint(fmt.Sprintf("core%d", i)),
		})
	}
	if cfg.Checks {
		m.check = newChecker(len(m.cores))
	}
	return m, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// NumCores returns the core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// L1 returns core i's private cache, for inspection.
func (m *Machine) L1(i int) *cache.Cache { return m.cores[i].l1 }

// L2 returns the shared second-level cache.
func (m *Machine) L2() *cache.Cache { return m.l2 }

// L2Tints returns the shared L2's tint table (one tint per core) — the
// handle an adaptive controller repartitions through.
func (m *Machine) L2Tints() *tint.Table { return m.l2tints }

// L2Tint returns core i's tint in the shared L2's table.
func (m *Machine) L2Tint(i int) tint.Tint { return m.cores[i].l2tint }

// SetL2Mask restricts core i's replacement in the shared L2 to mask.
func (m *Machine) SetL2Mask(i int, mask replacement.Mask) error {
	return m.l2tints.SetMask(m.cores[i].l2tint, mask)
}

// L2Mask returns the columns core i may currently replace into at the L2.
func (m *Machine) L2Mask(i int) replacement.Mask {
	return m.l2tints.Mask(m.cores[i].l2tint)
}

// MapRegion maps region r to mask in core i's private L1, mirroring
// memsys.System.MapRegion.
func (m *Machine) MapRegion(i int, r memory.Region, mask replacement.Mask) (tint.Tint, error) {
	c := m.cores[i]
	id := c.tints.NewTint(r.Name)
	if err := c.tints.SetMask(id, mask); err != nil {
		return 0, err
	}
	vm.Retint(c.pt, c.tlb, r.Base, r.Size, id)
	return id, nil
}

// SetL2Observer registers o to receive every shared-L2 access, attributed to
// the issuing core's L2 tint; nil detaches. This is the same hook shape
// memsys exposes, so the adaptive column-allocation controller plugs into
// the shared L2 without importing this package.
func (m *Machine) SetL2Observer(o memsys.AccessObserver) { m.observer = o }

// PageTable returns core i's page table, for read-only inspection (the
// inspect reducer attributes each resident L1 line to the tint of its page).
func (m *Machine) PageTable(i int) *vm.PageTable { return m.cores[i].pt }

// AccessesDone returns the total number of trace accesses executed so far,
// summed over cores — the serial stepper's global step count.
func (m *Machine) AccessesDone() int64 { return m.accessesDone() }

// RemapsFired returns how many events of the deterministic remap schedule
// have applied so far.
func (m *Machine) RemapsFired() int { return m.remapPos }

// CoreStatsAt returns core i's counters without building the whole Stats
// document — the per-frame sampling path, which must not allocate.
func (m *Machine) CoreStatsAt(i int) CoreStats {
	c := m.cores[i]
	return CoreStats{
		Instructions:      c.instructions,
		Cycles:            c.cycles,
		MemAccesses:       int64(c.pos),
		UncachedAccesses:  c.uncachedAcc,
		L1:                c.l1.Stats(),
		TLB:               c.tlb.Stats(),
		L2Accesses:        c.l2Accesses,
		L2Misses:          c.l2Misses,
		InvalidationsRecv: c.invalidationsRecv,
		Interventions:     c.interventions,
		Upgrades:          c.upgrades,
	}
}

// SetInspector registers fn to run every `every` trace accesses (exact
// global access counts), plus once at the end of a run that stops off the
// stride grid; nil detaches. The hook fires inside RunContext — and inside
// RunParallelContext, which falls back to the serial stepper while an
// inspector is attached so the frame sequence is bit-identical from either
// entry point (epoch barriers land at epoch-dependent access counts and
// cannot hit the stride positions exactly). fn runs on the simulation
// goroutine with the machine quiescent, so it may read caches, tint tables
// and page tables directly.
func (m *Machine) SetInspector(every int64, fn func(done int64)) {
	m.inspectEvery = every
	m.inspectFn = fn
}

// Done reports whether every core has exhausted its trace.
func (m *Machine) Done() bool {
	for _, c := range m.cores {
		if c.pos < len(c.trace) {
			return false
		}
	}
	return true
}

// Stats snapshots every counter; the copy shares nothing with the machine.
func (m *Machine) Stats() Stats {
	st := Stats{
		Bus:          m.bus,
		L2:           m.l2.Stats(),
		DirtyCreated: m.dirtyCreated,
		DirtyRetired: m.dirtyRetired,
	}
	for _, c := range m.cores {
		cs := CoreStats{
			Instructions:      c.instructions,
			Cycles:            c.cycles,
			MemAccesses:       int64(c.pos), // one access per executed trace entry
			UncachedAccesses:  c.uncachedAcc,
			L1:                c.l1.Stats(),
			TLB:               c.tlb.Stats(),
			L2Accesses:        c.l2Accesses,
			L2Misses:          c.l2Misses,
			InvalidationsRecv: c.invalidationsRecv,
			Interventions:     c.interventions,
			Upgrades:          c.upgrades,
		}
		st.Cores = append(st.Cores, cs)
		st.Instructions += cs.Instructions
		if cs.Cycles > st.Cycles {
			st.Cycles = cs.Cycles
		}
	}
	return st
}
