package multicore

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
	"colcache/internal/tint"
)

// dumpLines copies every line's metadata so two machines' cache contents can
// be compared wholesale.
func dumpLines(c *cache.Cache) []cache.LineState {
	cfg := c.Config()
	out := make([]cache.LineState, 0, cfg.NumSets*cfg.NumWays)
	for s := 0; s < cfg.NumSets; s++ {
		for w := 0; w < cfg.NumWays; w++ {
			out = append(out, c.LineAt(s, w))
		}
	}
	return out
}

// requireMachinesEqual fails the test unless a and b are observably identical:
// every counter in Stats, every L1 and L2 line, and every L2 column mask.
func requireMachinesEqual(t *testing.T, label string, a, b *Machine) {
	t.Helper()
	sa, sb := a.Stats(), b.Stats()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("%s: stats diverge:\nserial:   %+v\nparallel: %+v", label, sa, sb)
	}
	for i := 0; i < a.NumCores(); i++ {
		if la, lb := dumpLines(a.L1(i)), dumpLines(b.L1(i)); !reflect.DeepEqual(la, lb) {
			t.Fatalf("%s: core %d L1 contents diverge", label, i)
		}
		if ma, mb := a.L2Mask(i), b.L2Mask(i); ma != mb {
			t.Fatalf("%s: core %d L2 mask diverges: %s vs %s", label, i, ma, mb)
		}
	}
	if la, lb := dumpLines(a.L2()), dumpLines(b.L2()); !reflect.DeepEqual(la, lb) {
		t.Fatalf("%s: L2 contents diverge", label)
	}
}

// sharedConfig builds a contended machine config: every core mixes accesses
// to one shared window with a private window, guaranteeing cross-core bus
// traffic (and, for the epoch stepper, conflict rollbacks).
func sharedConfig(seed int64, cores int, checks bool) Config {
	rng := rand.New(rand.NewSource(seed))
	var traces []memtrace.Trace
	for c := 0; c < cores; c++ {
		n := 200 + rng.Intn(100)
		privLo := 0x10000 * uint64(c+1)
		shared := synthTrace(rng.Int63(), n, 0, 0x600)
		private := synthTrace(rng.Int63(), n, privLo, privLo+0x800)
		mixed := make(memtrace.Trace, 0, 2*n)
		for i := 0; i < n; i++ {
			mixed = append(mixed, shared[i], private[i])
		}
		traces = append(traces, mixed)
	}
	return Config{
		Geometry:    memory.MustGeometry(32, 1024),
		L1:          cache.Config{LineBytes: 32, NumSets: 8, NumWays: 2},
		L2:          cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
		Timing:      memsys.DefaultTiming,
		L2HitCycles: 4,
		Traces:      traces,
		Checks:      checks,
	}
}

// disjointConfig builds a conflict-free machine config: each core works a
// private 4GB-aligned window, so epochs always merge without rollback (the
// cores still share the L2).
func disjointConfig(seed int64, cores int, checks bool) Config {
	var traces []memtrace.Trace
	for c := 0; c < cores; c++ {
		lo := uint64(c+1) << 32
		traces = append(traces, synthTrace(seed+int64(c)*997, 300, lo, lo+0x1000))
	}
	cfg := sharedConfig(seed, cores, checks)
	cfg.Traces = traces
	return cfg
}

// The core equivalence claim: for any epoch length K, the epoch-parallel
// stepper produces bit-identical machines to the serial stepper — same
// counters, same cache contents — on both contended (rollback-exercising) and
// disjoint (merge-exercising) workloads, with invariant checking on and off.
func TestEpochStepperMatchesSerial(t *testing.T) {
	epochs := []int64{1, 2, 7, 64, 1024, DefaultEpochCycles}
	if testing.Short() {
		epochs = []int64{1, 7, 1024}
	}
	builders := []struct {
		name string
		cfg  func(seed int64) Config
	}{
		{"shared-checks", func(s int64) Config { return sharedConfig(s, 3, true) }},
		{"shared-nochecks", func(s int64) Config { return sharedConfig(s, 3, false) }},
		{"disjoint-checks", func(s int64) Config { return disjointConfig(s, 4, true) }},
		{"disjoint-nochecks", func(s int64) Config { return disjointConfig(s, 4, false) }},
	}
	for _, b := range builders {
		for _, k := range epochs {
			cfg := b.cfg(42)
			serial, parallel := MustNew(cfg), MustNew(cfg)
			if err := serial.Run(); err != nil {
				t.Fatalf("%s K=%d: serial: %v", b.name, k, err)
			}
			if err := parallel.RunParallel(k); err != nil {
				t.Fatalf("%s K=%d: parallel: %v", b.name, k, err)
			}
			requireMachinesEqual(t, b.name+" K="+string(rune('0'+k%10)), serial, parallel)
			if es := parallel.EpochStats(); es.Epochs == 0 {
				t.Fatalf("%s K=%d: epoch stepper never ran an epoch", b.name, k)
			}
		}
	}
}

// Partitioned L2 with a deterministic mid-run remap schedule: the remap fires
// at the same global L2-access sequence point in both steppers, so the
// machines must still match exactly.
func TestEpochStepperMatchesSerialWithRemap(t *testing.T) {
	cfg := sharedConfig(7, 4, true)
	sched := []RemapEvent{
		{AfterL2Accesses: 40, Core: 0, Mask: replacement.Range(2, 4)},
		{AfterL2Accesses: 40, Core: 1, Mask: replacement.Range(0, 2)},
		{AfterL2Accesses: 90, Core: 2, Mask: replacement.Of(3)},
	}
	for _, k := range []int64{1, 16, 512} {
		serial, parallel := MustNew(cfg), MustNew(cfg)
		for _, m := range []*Machine{serial, parallel} {
			for c := 0; c < 4; c++ {
				if err := m.SetL2Mask(c, replacement.Range(c, c+1)); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.SetRemapSchedule(sched); err != nil {
				t.Fatal(err)
			}
		}
		if err := serial.Run(); err != nil {
			t.Fatalf("K=%d serial: %v", k, err)
		}
		if err := parallel.RunParallel(k); err != nil {
			t.Fatalf("K=%d parallel: %v", k, err)
		}
		requireMachinesEqual(t, "remap", serial, parallel)
	}
}

// The merge path must actually be exercised by the disjoint workload and the
// rollback path by the contended one — otherwise the equivalence test above
// proves less than it claims.
func TestEpochStatsExerciseBothPaths(t *testing.T) {
	m := MustNew(disjointConfig(3, 4, false))
	if err := m.RunParallel(256); err != nil {
		t.Fatal(err)
	}
	es := m.EpochStats()
	if es.Epochs == 0 || es.RecordsMerged == 0 {
		t.Fatalf("disjoint run merged nothing: %+v", es)
	}
	if es.ConflictEpochs != 0 {
		t.Fatalf("disjoint windows produced conflicts: %+v", es)
	}

	m = MustNew(sharedConfig(3, 3, false))
	if err := m.RunParallel(256); err != nil {
		t.Fatal(err)
	}
	if es := m.EpochStats(); es.ConflictEpochs == 0 {
		t.Fatalf("contended run never rolled back: %+v", es)
	}
}

// Machines the epoch machinery cannot serve fall back to the serial stepper:
// a single core, or an attached observer. The fallback must still produce
// correct results and must not count epochs.
func TestRunParallelFallsBackToSerial(t *testing.T) {
	cfg := sharedConfig(5, 1, true)
	serial, parallel := MustNew(cfg), MustNew(cfg)
	if err := serial.Run(); err != nil {
		t.Fatal(err)
	}
	if err := parallel.RunParallel(64); err != nil {
		t.Fatal(err)
	}
	requireMachinesEqual(t, "single-core", serial, parallel)
	if es := parallel.EpochStats(); es.Epochs != 0 {
		t.Fatalf("single-core fallback ran epochs: %+v", es)
	}

	cfg = sharedConfig(5, 2, true)
	serial, parallel = MustNew(cfg), MustNew(cfg)
	parallel.SetL2Observer(countingObserver{n: new(int64)})
	if err := serial.Run(); err != nil {
		t.Fatal(err)
	}
	if err := parallel.RunParallel(64); err != nil {
		t.Fatal(err)
	}
	if es := parallel.EpochStats(); es.Epochs != 0 {
		t.Fatalf("observer fallback ran epochs: %+v", es)
	}
	requireMachinesEqual(t, "observer", serial, parallel)
}

type countingObserver struct{ n *int64 }

func (o countingObserver) ObserveAccess(id tint.Tint, addr memory.Addr, miss bool) { *o.n++ }

// Satellite stress test: randomized epoch lengths and core counts with
// mid-run context cancellation. Cancellation lands only at epoch barriers,
// which are clean serial-equivalent states, so after a cancel the machine
// must (a) pass the full invariant walk with a balanced writeback ledger and
// (b) resume — even under a different epoch length — to a final state
// bit-identical to a serial run. Run under -race this also hammers the
// parallel lookahead for data races.
func TestEpochCancellationStress(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	for seed := int64(1); seed <= int64(rounds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		cores := 2 + rng.Intn(3)
		k1 := int64(1 + rng.Intn(300))
		k2 := int64(1 + rng.Intn(300))
		cfg := sharedConfig(seed, cores, true)

		serial, parallel := MustNew(cfg), MustNew(cfg)
		if err := serial.Run(); err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}

		ctx, cancel := context.WithCancel(context.Background())
		err := parallel.RunParallelContext(ctx, k1, 32, func(done int64) {
			if done > int64(16+rng.Intn(256)) {
				cancel()
			}
		})
		cancel()
		if err != nil && err != context.Canceled {
			t.Fatalf("seed %d: cancelled run: %v", seed, err)
		}
		if err == nil && !parallel.Done() {
			t.Fatalf("seed %d: run stopped without error or completion", seed)
		}
		// The interrupted machine must be consistent: every invariant holds
		// and the ledger balances mid-run.
		if err := parallel.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: post-cancel invariants: %v", seed, err)
		}
		// Resume with a different epoch length and compare against serial.
		if err := parallel.RunParallel(k2); err != nil {
			t.Fatalf("seed %d: resume: %v", seed, err)
		}
		requireMachinesEqual(t, "stress", serial, parallel)
	}
}

// Regression test for the direct-execution conflict hole: with checks off a
// drained core's trailing local hits are committed as one unkeyed tail, and a
// direct-executed transaction keyed inside that span must trigger a rollback
// — a predicate that only examines cores with still-pending records misses
// it, silently breaking serial equivalence in exactly the mode benchmarks
// and production runs use.
//
// The machine is hand-built so that, in a single K=256 epoch (DefaultTiming,
// L2 hit 1 cycle, direct-mapped 4-set L1s, a 1-set/2-way LRU L2):
//
//   - core 1 (victim) fills line L, then runs a fetch-underestimation gadget:
//     read A, evict it from its L1 with A2, re-read A. The lookahead's
//     pending-set estimator prices the re-miss as an L2 hit (1 cycle), but at
//     the merge A2's fill has already evicted A from the tiny L2, so the true
//     cost is 21 — the victim's true clock runs 20 cycles past its optimistic
//     clock. Its remaining 187 reads of L are local hits folded as one
//     unkeyed tail whose true serial keys reach 274, past the horizon.
//   - core 0 (writer) misses one private line, then pads with a Think=233
//     hit: its lookahead stops exactly at the horizon with one access left —
//     a write to L — and its log drains at true clock 256, so the merge
//     direct-executes the write at key 256, inside the victim's tail span.
//   - core 2 (keeper) runs the same gadget plus 208 padding hits so its
//     final read is a pending record keyed at 274 > 256, keeping the merge
//     loop alive long enough for the direct execution to happen at all.
//
// Serially the write invalidates the victim's copy of L at key 256, turning
// its last 19 hits into misses; a merge that commits them as hits diverges.
// The epoch stepper must detect the overlap and roll the epoch back.
func TestDirectExecutionConflictsWithFoldedHitTail(t *testing.T) {
	const (
		lineL = 0x1000 // victim's hit line, later written by core 0 (L1 set 0)
		lineA = 0x2040 // victim skew gadget (L1 set 1)
		lineB = 0x2140 // evicts lineA from the victim's L1 (set 1)
		lineP = 0x3040 // writer's private miss (set 1)
		lineG = 0x4040 // keeper gadget (set 1)
		lineH = 0x4140 // evicts lineG from the keeper's L1 (set 1)
	)
	thinkRead := func(addr uint64, th uint32) memtrace.Access {
		return memtrace.Access{Addr: addr, Op: memtrace.Read, Think: th}
	}
	writer := memtrace.Trace{read(lineP), thinkRead(lineP, 233), write(lineL)}
	victim := memtrace.Trace{read(lineL), read(lineA), read(lineB), read(lineA)}
	for i := 0; i < 187; i++ {
		victim = append(victim, read(lineL))
	}
	keeper := memtrace.Trace{read(lineG), read(lineH), read(lineG)}
	for i := 0; i < 208; i++ {
		keeper = append(keeper, read(lineG))
	}
	keeper = append(keeper, read(lineH))

	cfg := Config{
		Geometry:    memory.MustGeometry(64, 4096),
		L1:          cache.Config{LineBytes: 64, NumSets: 4, NumWays: 1, Policy: replacement.LRU},
		L2:          cache.Config{LineBytes: 64, NumSets: 1, NumWays: 2, Policy: replacement.LRU},
		Timing:      memsys.DefaultTiming,
		L2HitCycles: 1,
		Traces:      []memtrace.Trace{writer, victim, keeper},
	}
	serial, parallel := MustNew(cfg), MustNew(cfg)
	if err := serial.Run(); err != nil {
		t.Fatal(err)
	}
	if err := parallel.RunParallel(256); err != nil {
		t.Fatal(err)
	}
	es := parallel.EpochStats()
	if es.ConflictEpochs == 0 {
		t.Fatalf("the direct-executed write never tripped the tail-window conflict check: %+v", es)
	}
	requireMachinesEqual(t, "folded-tail", serial, parallel)
}

// Satellite regression test: the coherence invariant checks must see through
// the parallel stepper. A test hook corrupts one buffered bus record just
// before the barrier merge applies it; the checker has to catch the
// resulting protocol violation at the epoch barrier.
func TestParallelStepperDetectsInjectedViolations(t *testing.T) {
	// Injection 1: demote a write miss to a read miss. The lookahead left
	// the line Modified+dirty in the issuing core's L1, but the merge now
	// takes the read path — no dirtyCreated — so the writeback ledger breaks.
	cfg := disjointConfig(11, 2, true)
	m := MustNew(cfg)
	injected := false
	m.testMergeHook = func(coreIdx int, r *epochRec) {
		if !injected && r.kind == recMiss && r.isWrite {
			r.isWrite = false
			injected = true
		}
	}
	err := m.RunParallel(512)
	if !injected {
		t.Fatal("hook never saw a write miss")
	}
	if err == nil || !strings.Contains(err.Error(), "ledger") {
		t.Fatalf("corrupted write miss not caught by the ledger check: %v", err)
	}

	// Injection 2: swallow a BusUpgr — rewrite an upgrade record into a
	// plain hit note, so the merge never invalidates the remote sharers.
	// Core 1 reads the line and exits; core 0 spins on private lines long
	// enough that its eventual upgrade lands in a later epoch (no conflict,
	// so the merge path — and the hook — actually run), leaving core 1's
	// stale copy valid alongside core 0's Modified one: an SWMR violation.
	shared := uint64(0x0)
	var tr0 memtrace.Trace
	tr0 = append(tr0, read(shared))
	for i := 0; i < 300; i++ {
		tr0 = append(tr0, read(0x20), read(0x40))
	}
	tr0 = append(tr0, write(shared))
	m = MustNew(testConfig(tr0, memtrace.Trace{read(shared)}))
	injected = false
	m.testMergeHook = func(coreIdx int, r *epochRec) {
		if !injected && r.kind == recUpgrade {
			r.kind = recNote
			injected = true
		}
	}
	err = m.RunParallel(64)
	if !injected {
		t.Fatal("hook never saw an upgrade record")
	}
	if err == nil {
		t.Fatal("swallowed invalidation not caught")
	}
	if !strings.Contains(err.Error(), "SWMR") && !strings.Contains(err.Error(), "Modified") &&
		!strings.Contains(err.Error(), "ledger") && !strings.Contains(err.Error(), "stale") {
		t.Fatalf("unexpected violation report: %v", err)
	}
}
