package multicore

// The epoch-parallel stepper: the same machine, bit-identical results, one
// goroutine per core.
//
// The serial stepper (step.go) interleaves cores one access at a time —
// smallest local clock first, ties to the lowest index — which makes every
// simulated access a serialization point and 8-core throughput ~13x worse
// than 1-core. This file removes that bottleneck without giving up one bit
// of determinism, in epochs of K simulated cycles:
//
//  1. Snapshot. The whole machine state (flat L1/L2 arrays, TLBs, every
//     counter) is captured; on the flat SoA state from PR 6 this is a few
//     contiguous copies.
//  2. Parallel lookahead. Each core runs on its own goroutine until its
//     local clock passes the horizon H = min(clocks) + K, touching ONLY its
//     private state: its L1, TLB and counters. Every access that would put a
//     transaction on the bus (an L1 miss's BusRd/BusRdX, a write hit on
//     Shared's BusUpgr) is appended to the core's ordered log instead of
//     executed, along with the local cycle cost accumulated since the
//     previous log entry. The shared L2 is frozen during this phase; cores
//     may Probe it read-only to estimate fetch latency (load balance only —
//     never correctness). Each core also records the set of line addresses
//     it touched and the set of lines its fills evicted.
//  3. Conflict scan. A buffered bus transaction conflicts when its line was
//     resident in another looking-ahead core's L1 at any point during the
//     window — that core touched it, evicted it, or still holds it. Then
//     either side could have diverged from the serial interleaving (a hit
//     that should have been invalidated away, a victim choice that should
//     have seen an invalidated way, an intervention that should have found
//     — or missed — a Modified copy), so the epoch is rolled back to the
//     snapshot and the window [old clocks, H) is replayed with the serial
//     stepper. Everything else commutes with the remote lookahead: a
//     transaction on a line a core never held reads and writes nothing that
//     core's lookup, hit bookkeeping or victim selection depends on.
//  4. Merge. With no conflicts, the buffered logs are applied at the
//     barrier in exactly the serial arbitration order. The serial schedule
//     orders accesses by (core clock before the access, core index); each
//     log record carries its local-cost prefix, so its event time is the
//     core's merged-so-far true clock plus that prefix, and a k-way merge by
//     (event time, core index) reproduces the serial global order of bus
//     transactions and L2 accesses. Records are applied through the same
//     helpers the serial stepper uses (invalidateRemotes, intervene,
//     l2Install, l2Demand), which also computes the true L2/intervention
//     cycle costs the lookahead could only estimate. A core whose log
//     drains while its trace remains is direct-executed through m.access
//     under the same (clock, index) key — after a conflict check of its
//     predicted transaction against the cores whose logs are still pending
//     and against any drained core whose folded tail of local hits reaches
//     past the access's serial key (with checks off those hits were
//     committed unkeyed, so a transaction keyed inside their span could
//     serially precede them; see mergeEpoch).
//
// Every epoch ends with all logs consumed, so every epoch boundary is a
// clean, fully-merged, serial-equivalent machine state: rollback is always
// "restore this epoch's snapshot", results are a pure function of the
// configuration and traces for ANY K (K=1 degenerates to the serial
// interleaving one access at a time), and cancellation between epochs leaves
// a consistent machine with the writeback ledger balanced.
//
// With Config.Checks on, every cached access — hits included — is logged so
// the shadow-model notes (noteWrite/noteReadHit/noteFill/noteDrop) fire at
// the barrier in serial order; the structural walk (CheckInvariants) runs
// once per epoch barrier instead of once per step. A machine with an
// AccessObserver attached (the adaptive controller seam — mid-run state the
// rollback cannot restore) or a custom injected replacement policy (not
// snapshottable) falls back to the serial stepper.

import (
	"context"
	"math"
	"sync"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
	"colcache/internal/vm"
)

// DefaultEpochCycles is the epoch length K used when none is given: long
// enough to amortize the snapshot and barrier, short enough that the
// conflict window (and a rollback's wasted work) stays small.
const DefaultEpochCycles = 4096

// EpochStats counts what the epoch-parallel stepper did. All zeros after a
// purely serial run; exposed so experiments can report the conflict rate
// and the parallel fraction.
type EpochStats struct {
	Epochs            int64 // epochs attempted (snapshot + parallel lookahead)
	ConflictEpochs    int64 // epochs rolled back and replayed serially
	RecordsMerged     int64 // buffered records applied at barriers
	DirectAccesses    int64 // accesses executed serially inside a merge (drained log)
	LookaheadAccesses int64 // accesses executed inside parallel lookaheads (pre-rollback)
}

// EpochStats returns the epoch-parallel stepper's counters.
func (m *Machine) EpochStats() EpochStats { return m.estats }

// Record kinds. recNote exists only with Config.Checks on: it carries a
// local hit to the barrier so the shadow-model notes fire in serial order.
const (
	recNote uint8 = iota
	recUpgrade
	recMiss
)

// epochRec is one buffered global event from a core's lookahead: a bus
// transaction (miss or upgrade) or, with checks on, a local hit note.
type epochRec struct {
	pre         int64       // local-only cycles accumulated since the previous record
	own         int64       // this access's locally-known cycles (think, TLB, L1 hit, victim writeback)
	addr        memory.Addr // accessed address (the merge's l2Demand needs it)
	line        memory.Addr // line base of addr
	evictedAddr memory.Addr // line base of the displaced victim, when evicted
	kind        uint8
	isWrite     bool
	evicted     bool
	writeback   bool // the victim was dirty
}

// coreLog is one core's per-epoch lookahead output. Buffers are reused
// across epochs.
type coreLog struct {
	recs []epochRec
	// victims holds the line addresses this core's fills evicted during the
	// window. Together with a live L1 probe it decides residence-during-
	// the-window exactly: a line the core held at ANY point in the window is
	// either still resident (probe hits) or was evicted (victims) — lines
	// the core touched need no set of their own, which keeps the hot
	// lookahead path free of per-access bookkeeping.
	victims map[memory.Addr]struct{}
	// pending tracks lines this core's buffered misses will have installed
	// in the L2 by merge time — the lookahead's fetch-latency estimator
	// counts their MissPenalty once, not per re-miss.
	pending map[memory.Addr]struct{}
	tail    int64 // local cycles after the last record
	// tailEnd is the core's clock immediately after the merge folded the
	// tail in. With checks off the tail is an UNKEYED commit of trailing
	// local hits whose serial keys reach up to (and, for zero-cost hits, at)
	// tailEnd; mergeEpoch's direct-execution conflict predicate uses it to
	// decide whether a new transaction's serial key lands inside that
	// already-committed span.
	tailEnd  int64
	accesses int64
	active   bool // this core ran a lookahead this epoch
}

func (lg *coreLog) reset() {
	lg.recs = lg.recs[:0]
	clear(lg.victims)
	clear(lg.pending)
	lg.tail = 0
	lg.tailEnd = 0
	lg.accesses = 0
	lg.active = false
}

// coreCounters is the scalar half of one core's snapshot.
type coreCounters struct {
	pos               int
	instructions      int64
	cycles            int64
	uncachedAcc       int64
	l2Accesses        int64
	l2Misses          int64
	invalidationsRecv int64
	interventions     int64
	upgrades          int64
}

// machineSnapshot captures everything an epoch can mutate. Buffers are
// reused across epochs, so steady-state snapshotting allocates nothing.
type machineSnapshot struct {
	l1    []*cache.Snapshot
	tlb   []*vm.TLBSnapshot
	l2    *cache.Snapshot
	cores []coreCounters

	bus          BusStats
	dirtyCreated int64
	dirtyRetired int64
	l2Demands    int64
	remapPos     int
	l2Masks      []replacement.Mask // per core, only with a remap schedule

	checkVersion map[memory.Addr]uint64 // only with Config.Checks
	checkCopies  []map[memory.Addr]uint64
}

func (m *Machine) snapshotInto(s *machineSnapshot) {
	n := len(m.cores)
	if len(s.l1) != n {
		s.l1 = make([]*cache.Snapshot, n)
		s.tlb = make([]*vm.TLBSnapshot, n)
		s.cores = make([]coreCounters, n)
	}
	for i, c := range m.cores {
		s.l1[i] = c.l1.Snapshot(s.l1[i])
		s.tlb[i] = c.tlb.Snapshot(s.tlb[i])
		s.cores[i] = coreCounters{
			pos:               c.pos,
			instructions:      c.instructions,
			cycles:            c.cycles,
			uncachedAcc:       c.uncachedAcc,
			l2Accesses:        c.l2Accesses,
			l2Misses:          c.l2Misses,
			invalidationsRecv: c.invalidationsRecv,
			interventions:     c.interventions,
			upgrades:          c.upgrades,
		}
	}
	s.l2 = m.l2.Snapshot(s.l2)
	s.bus = m.bus
	s.dirtyCreated = m.dirtyCreated
	s.dirtyRetired = m.dirtyRetired
	s.l2Demands = m.l2Demands
	s.remapPos = m.remapPos
	if m.remapSched != nil {
		if len(s.l2Masks) != n {
			s.l2Masks = make([]replacement.Mask, n)
		}
		for i := range m.cores {
			s.l2Masks[i] = m.L2Mask(i)
		}
	}
	if m.check != nil {
		if s.checkVersion == nil {
			s.checkVersion = make(map[memory.Addr]uint64, len(m.check.version))
			s.checkCopies = make([]map[memory.Addr]uint64, n)
			for i := range s.checkCopies {
				s.checkCopies[i] = make(map[memory.Addr]uint64)
			}
		}
		copyAddrMap(s.checkVersion, m.check.version)
		for i := range s.checkCopies {
			copyAddrMap(s.checkCopies[i], m.check.copies[i])
		}
	}
}

func (m *Machine) restoreFrom(s *machineSnapshot) {
	for i, c := range m.cores {
		c.l1.Restore(s.l1[i])
		c.tlb.Restore(s.tlb[i])
		cc := s.cores[i]
		c.pos = cc.pos
		c.instructions = cc.instructions
		c.cycles = cc.cycles
		c.uncachedAcc = cc.uncachedAcc
		c.l2Accesses = cc.l2Accesses
		c.l2Misses = cc.l2Misses
		c.invalidationsRecv = cc.invalidationsRecv
		c.interventions = cc.interventions
		c.upgrades = cc.upgrades
	}
	m.l2.Restore(s.l2)
	m.bus = s.bus
	m.dirtyCreated = s.dirtyCreated
	m.dirtyRetired = s.dirtyRetired
	m.l2Demands = s.l2Demands
	m.remapPos = s.remapPos
	if m.remapSched != nil {
		for i := range m.cores {
			// Validated masks from the live table; SetMask cannot fail.
			_ = m.l2tints.SetMask(m.cores[i].l2tint, s.l2Masks[i])
		}
	}
	if m.check != nil {
		copyAddrMap(m.check.version, s.checkVersion)
		for i := range m.check.copies {
			copyAddrMap(m.check.copies[i], s.checkCopies[i])
		}
	}
}

func copyAddrMap(dst, src map[memory.Addr]uint64) {
	clear(dst)
	for k, v := range src {
		dst[k] = v
	}
}

// snapshottable reports whether every cache in the machine supports
// Snapshot/Restore. Machines built by New always do; only a hand-assembled
// machine with an injected policy would not.
func (m *Machine) snapshottable() bool {
	if !m.l2.Snapshottable() {
		return false
	}
	for _, c := range m.cores {
		if !c.l1.Snapshottable() {
			return false
		}
	}
	return true
}

// RunParallel runs the machine to completion on the epoch-parallel stepper
// with an epoch of epochCycles simulated cycles (<=0 selects
// DefaultEpochCycles). The result is bit-identical to Run for any epoch
// length.
func (m *Machine) RunParallel(epochCycles int64) error {
	return m.RunParallelContext(context.Background(), epochCycles, 0, nil)
}

// RunParallelContext is RunParallel with cooperative cancellation and
// progress reporting, mirroring RunContext: the context is polled at every
// epoch barrier, and onCheckpoint — when non-nil — receives the total number
// of trace accesses executed once at least checkEvery more have completed
// since the last report (zero or negative means 4096). Cancellation between
// epochs leaves the machine in a consistent, fully-merged state (the
// writeback ledger balances), from which a later Run or RunParallel call
// resumes.
//
// Machines the epoch machinery cannot serve bit-identically fall back to the
// serial RunContext: a single core (nothing to parallelize), an attached
// AccessObserver (mid-run controller state a rollback cannot restore), an
// attached inspector (frames must land at exact access-count strides, which
// epoch barriers — at epoch-length-dependent positions — cannot hit), or a
// non-snapshottable injected replacement policy.
func (m *Machine) RunParallelContext(ctx context.Context, epochCycles int64, checkEvery int, onCheckpoint func(done int64)) error {
	if epochCycles <= 0 {
		epochCycles = DefaultEpochCycles
	}
	if checkEvery <= 0 {
		checkEvery = 4096
	}
	if m.violation != nil {
		return m.violation
	}
	if len(m.cores) == 1 || m.observer != nil || m.inspectFn != nil || !m.snapshottable() {
		return m.RunContext(ctx, checkEvery, onCheckpoint)
	}

	logs := make([]*coreLog, len(m.cores))
	for i := range logs {
		logs[i] = &coreLog{
			victims: make(map[memory.Addr]struct{}),
			pending: make(map[memory.Addr]struct{}),
		}
	}
	snap := &machineSnapshot{}
	var lastReport int64

	for !m.Done() {
		if err := ctx.Err(); err != nil {
			if onCheckpoint != nil {
				onCheckpoint(m.accessesDone())
			}
			return err
		}

		minClock := int64(math.MaxInt64)
		for _, c := range m.cores {
			if c.pos < len(c.trace) && c.cycles < minClock {
				minClock = c.cycles
			}
		}
		horizon := minClock + epochCycles

		m.snapshotInto(snap)
		m.estats.Epochs++

		var wg sync.WaitGroup
		for i, c := range m.cores {
			lg := logs[i]
			lg.reset()
			if c.pos >= len(c.trace) || c.cycles >= horizon {
				continue
			}
			lg.active = true
			wg.Add(1)
			go func(c *core, lg *coreLog) {
				defer wg.Done()
				m.lookahead(c, lg, horizon)
			}(c, lg)
		}
		wg.Wait()
		for _, lg := range logs {
			m.estats.LookaheadAccesses += lg.accesses
		}

		conflict, err := m.mergeEpoch(logs)
		if err != nil {
			return err
		}
		if conflict {
			m.estats.ConflictEpochs++
			m.restoreFrom(snap)
			if err := m.serialWindow(horizon); err != nil {
				return err
			}
		}
		if m.check != nil {
			if m.violation == nil {
				m.violation = m.CheckInvariants()
			}
			if m.violation != nil {
				return m.violation
			}
		}
		if onCheckpoint != nil {
			if done := m.accessesDone(); done-lastReport >= int64(checkEvery) {
				onCheckpoint(done)
				lastReport = done
			}
		}
	}
	if onCheckpoint != nil {
		onCheckpoint(m.accessesDone())
	}
	return ctx.Err()
}

func (m *Machine) accessesDone() int64 {
	var n int64
	for _, c := range m.cores {
		n += int64(c.pos)
	}
	return n
}

// lookahead pre-executes core c's trace until its optimistic clock reaches
// the horizon, mutating only c's private state (L1, TLB, counters) and
// buffering every global event into lg. The optimistic clock adds a fetch
// estimate for misses from a read-only probe of the frozen L2; the true cost
// is computed at the merge, so the estimate shapes only how much work lands
// in this epoch, never the result.
func (m *Machine) lookahead(c *core, lg *coreLog, horizon int64) {
	checks := m.check != nil
	// Hoist the per-access constants so the hot loop reads registers, not
	// the Machine: this loop must stay as close to the single-core replay
	// loop's cost as possible — it IS the parallel fraction.
	nonMem := int64(m.timing.NonMemInstr)
	tlbMiss := int64(m.timing.TLBMiss)
	uncached := int64(m.timing.Uncached)
	cacheHit := int64(m.timing.CacheHit)
	trace, pos := c.trace, c.pos
	l1, tlb := c.l1, c.tlb
	opt := c.cycles
	var local, ins int64
	for pos < len(trace) && opt < horizon {
		a := trace[pos]
		pos++
		ins += int64(a.Think) + 1
		cyc := int64(a.Think) * nonMem

		pte, tlbHit := tlb.Lookup(a.Addr)
		if !tlbHit {
			cyc += tlbMiss
		}
		if pte.Uncached {
			c.uncachedAcc++
			cyc += uncached
			local += cyc
			opt += cyc
			continue
		}

		isWrite := a.Op == memtrace.Write
		if way, st, ok := l1.HitFast(a.Addr, isWrite); ok {
			cyc += cacheHit
			if isWrite && st == StateShared {
				lineAddr := m.g.LineBase(a.Addr)
				set, _ := l1.SetTagOf(a.Addr)
				l1.SetAux(set, way, StateModified)
				lg.recs = append(lg.recs, epochRec{kind: recUpgrade, pre: local, own: cyc, line: lineAddr, isWrite: true})
				local = 0
			} else if checks {
				lg.recs = append(lg.recs, epochRec{kind: recNote, pre: local, own: cyc, line: m.g.LineBase(a.Addr), isWrite: isWrite})
				local = 0
			} else {
				local += cyc
			}
			opt += cyc
			continue
		}

		lineAddr := m.g.LineBase(a.Addr)
		mask := c.tints.Mask(pte.Tint)
		set, _ := l1.SetTagOf(a.Addr)
		var res cache.Result
		if isWrite {
			res = l1.Write(a.Addr, mask)
		} else {
			res = l1.Read(a.Addr, mask)
		}
		cyc += cacheHit

		if res.Hit {
			st := l1.AuxAt(set, res.Way)
			if isWrite && st == StateShared {
				l1.SetAux(set, res.Way, StateModified)
				lg.recs = append(lg.recs, epochRec{kind: recUpgrade, pre: local, own: cyc, line: lineAddr, isWrite: true})
				local = 0
			} else if checks {
				lg.recs = append(lg.recs, epochRec{kind: recNote, pre: local, own: cyc, line: lineAddr, isWrite: isWrite})
				local = 0
			} else {
				local += cyc
			}
			opt += cyc
			continue
		}

		// Miss: fill locally now (the victim's L2 install and the bus
		// transaction are deferred to the merge), estimate the fetch.
		r := epochRec{kind: recMiss, pre: local, own: cyc, addr: a.Addr, line: lineAddr, isWrite: isWrite}
		local = 0
		if res.Evicted {
			r.evicted = true
			r.evictedAddr = l1.AddrOfTag(set, res.EvictedTag)
			lg.victims[r.evictedAddr] = struct{}{}
			if res.Writeback {
				r.writeback = true
				r.own += int64(m.timing.Writeback)
			}
		}
		if isWrite {
			l1.SetAux(set, res.Way, StateModified)
		} else {
			l1.SetAux(set, res.Way, StateShared)
		}
		lg.recs = append(lg.recs, r)

		est := int64(m.l2Hit)
		if _, inL2 := m.l2.Probe(lineAddr); !inL2 {
			if _, pend := lg.pending[lineAddr]; !pend {
				est += int64(m.timing.MissPenalty)
				lg.pending[lineAddr] = struct{}{}
			}
		}
		if r.writeback {
			lg.pending[r.evictedAddr] = struct{}{}
		}
		opt += r.own + est
	}
	lg.accesses = int64(pos - c.pos)
	c.pos = pos
	c.instructions += ins
	lg.tail = local
}

// txConflicts reports whether a bus transaction on line from core i would
// have to interleave with another core's private lookahead window — i.e.
// whether the line was resident in that core's L1 at any point during the
// window, so the probe, invalidation or downgrade the transaction performs
// (or the transaction's own outcome: an intervention found or missed, a
// writeback race won or lost) could depend on where inside the window it
// lands. Residence during the window decomposes exactly: any line the core
// held — whether it hit it, filled it, or carried it in from before the
// epoch — is either still resident at window end (a pure L1 probe hits) or
// was displaced by one of the core's fills (recorded in victims).
// Cores that ran no lookahead this epoch are exempt: their L1s are static
// across the window, and the merge applies every transaction against them
// in serial key order, so placement inside the window cannot matter. When
// consider is non-nil, only active cores it reports true for are examined
// (see mergeEpoch's direct-execution predicate).
func (m *Machine) txConflicts(i int, line memory.Addr, logs []*coreLog, consider func(j int) bool) bool {
	for j, lg := range logs {
		if j == i || !lg.active {
			continue
		}
		if consider != nil && !consider(j) {
			continue
		}
		if _, ok := lg.victims[line]; ok {
			return true
		}
		if _, hit := m.cores[j].l1.Probe(line); hit {
			return true
		}
	}
	return false
}

// predictTx reports whether executing access a on core c would put a
// transaction on the bus, and for which line, without perturbing any state:
// the page table is consulted directly (the TLB inside m.access will do the
// counted lookup) and the L1 via its read-only Probe.
func (m *Machine) predictTx(c *core, a memtrace.Access) (memory.Addr, bool) {
	if c.pt.Lookup(a.Addr).Uncached {
		return 0, false
	}
	w, hit := c.l1.Probe(a.Addr)
	line := m.g.LineBase(a.Addr)
	if !hit {
		return line, true
	}
	if a.Op == memtrace.Write {
		set, _ := c.l1.SetTagOf(a.Addr)
		if c.l1.AuxAt(set, w) == StateShared {
			return line, true
		}
	}
	return 0, false
}

// mergeEpoch scans the epoch's logs for conflicts and, finding none, applies
// every buffered record in the serial arbitration order. It reports
// conflict=true when the caller must roll back to the epoch snapshot and
// replay the window serially; a non-nil error is an invariant violation
// (checks mode only).
//
// Ordering: the serial stepper executes the access of the core with the
// smallest clock, lowest index on ties, and every access advances only its
// own core's clock — so the serial schedule is exactly a k-way merge of the
// per-core access sequences keyed by (clock before the access, core index).
// A pending record's key is the core's merged-so-far true clock plus the
// record's local-cost prefix; a drained core's key is its true clock. A
// drained core (log fully applied, tail cycles folded in) is AT its true
// clock, so when it holds the minimum key its next trace access is the next
// serial event and can be executed directly with m.access. Its transaction,
// if any, is conflict-checked against every core with still-pending records
// AND every drained core whose tail fold reaches past the access's key:
// with checks off a core's trailing local hits are committed as one unkeyed
// tail whose serial keys extend up to tailEnd, so a transaction keyed below
// tailEnd (or at it, when the tie breaks toward the transaction) could
// serially land before hits that were already applied — those cores must be
// probed like any pending one. A drained core whose tailEnd sits at or
// below the key is provably safe: every access it has committed precedes
// the new one in the serial schedule, and everything it has left is keyed
// at or above its clock ≥ the current minimum. Note the tail-window check
// never misses a post-fold eviction: while tailEnd exceeds the current
// minimum key, that core cannot yet have direct-executed anything (its
// first post-fold access is keyed at or above tailEnd), so its L1 and
// victim set still describe the lookahead window exactly.
func (m *Machine) mergeEpoch(logs []*coreLog) (bool, error) {
	remaining := 0
	for i, lg := range logs {
		for ri := range lg.recs {
			r := &lg.recs[ri]
			if r.kind == recNote {
				continue
			}
			if m.txConflicts(i, r.line, logs, nil) {
				return true, nil
			}
		}
		remaining += len(lg.recs)
		if len(lg.recs) == 0 {
			// No global events: the whole lookahead was local time.
			m.cores[i].cycles += lg.tail
			lg.tail = 0
			lg.tailEnd = m.cores[i].cycles
		}
	}

	cur := make([]int, len(logs))
	for remaining > 0 {
		best, bestKey, bestRec := -1, int64(0), false
		for i, c := range m.cores {
			if cur[i] < len(logs[i].recs) {
				if t := c.cycles + logs[i].recs[cur[i]].pre; best < 0 || t < bestKey {
					best, bestKey, bestRec = i, t, true
				}
			} else if c.pos < len(c.trace) {
				if t := c.cycles; best < 0 || t < bestKey {
					best, bestKey, bestRec = i, t, false
				}
			}
		}

		c := m.cores[best]
		if !bestRec {
			// Drained log, trace remaining: direct-execute the next access.
			a := c.trace[c.pos]
			if line, tx := m.predictTx(c, a); tx {
				conflicts := func(j int) bool {
					if cur[j] < len(logs[j].recs) {
						return true
					}
					// Drained core: its trailing local hits were committed as
					// one unkeyed tail ending at tailEnd. If that span reaches
					// past this access's serial key (ties break toward the
					// lower index), the transaction would serially precede
					// some of those already-committed hits — check it.
					te := logs[j].tailEnd
					return te > bestKey || (te == bestKey && j > best)
				}
				if m.txConflicts(best, line, logs, conflicts) {
					return true, nil
				}
			}
			c.instructions += int64(a.Think) + 1
			c.cycles += m.access(c, a)
			c.pos++
			m.estats.DirectAccesses++
			if m.violation != nil {
				return false, m.violation
			}
			continue
		}

		lg := logs[best]
		r := &lg.recs[cur[best]]
		cur[best]++
		remaining--
		m.estats.RecordsMerged++
		if m.testMergeHook != nil {
			m.testMergeHook(best, r)
		}
		c.cycles += r.pre + r.own
		switch r.kind {
		case recNote:
			if r.isWrite {
				m.noteWrite(c, r.line)
			} else {
				m.noteReadHit(c, r.line)
			}
		case recUpgrade:
			m.bus.Upgrades++
			c.upgrades++
			m.invalidateRemotes(c, r.line)
			m.dirtyCreated++
			m.noteWrite(c, r.line)
		case recMiss:
			if r.evicted {
				if r.writeback {
					m.l2Install(c, r.evictedAddr)
					m.dirtyRetired++
				}
				m.noteDrop(c, r.evictedAddr)
			}
			op := memtrace.Read
			if r.isWrite {
				op = memtrace.Write
				m.bus.ReadXs++
				m.invalidateRemotes(c, r.line)
			} else {
				m.bus.Reads++
				m.intervene(c, r.line)
			}
			m.l2Demand(c, memtrace.Access{Addr: r.addr, Op: op}, r.isWrite)
			if r.isWrite {
				m.dirtyCreated++
				m.noteWrite(c, r.line)
			} else {
				m.noteFill(c, r.line)
			}
		}
		if cur[best] == len(lg.recs) {
			c.cycles += lg.tail
			lg.tail = 0
			lg.tailEnd = c.cycles
		}
		if m.violation != nil {
			return false, m.violation
		}
	}
	return false, nil
}

// serialWindow replays, with the serial stepper's exact arbitration, every
// access that starts before the horizon. Afterwards each unfinished core's
// clock is ≥ horizon — the same clean barrier state a merged epoch reaches —
// so the next epoch proceeds identically to the serial schedule.
func (m *Machine) serialWindow(horizon int64) error {
	for {
		var next *core
		for _, c := range m.cores {
			if c.pos >= len(c.trace) || c.cycles >= horizon {
				continue
			}
			if next == nil || c.cycles < next.cycles {
				next = c
			}
		}
		if next == nil {
			return nil
		}
		next.instructions += int64(next.trace[next.pos].Think) + 1
		next.cycles += m.access(next, next.trace[next.pos])
		next.pos++
		if m.violation != nil {
			return m.violation
		}
	}
}
