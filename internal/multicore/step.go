package multicore

import (
	"context"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memtrace"
)

// Step advances the machine by one trace access on the core whose local
// clock is furthest behind — smallest cycle count, ties broken by lowest
// core index. This fixed arbitration makes a run a pure function of the
// configuration and traces: replaying the same inputs interleaves the cores
// identically regardless of host parallelism.
//
// It returns false when every trace is exhausted, and a non-nil error only
// when Config.Checks is on and a coherence invariant was violated.
func (m *Machine) Step() (bool, error) {
	if m.violation != nil {
		return false, m.violation
	}
	var next *core
	for _, c := range m.cores {
		if c.pos >= len(c.trace) {
			continue
		}
		if next == nil || c.cycles < next.cycles {
			next = c
		}
	}
	if next == nil {
		return false, nil
	}
	next.instructions += int64(next.trace[next.pos].Think) + 1
	next.cycles += m.access(next, next.trace[next.pos])
	next.pos++
	if m.check != nil {
		m.violation = m.checkStep()
	}
	return true, m.violation
}

// Run steps the machine until every trace is exhausted (or a check fails).
// With checks off it uses a tight loop that skips Step's per-step violation
// bookkeeping; the arbitration (min-cycles core, lowest index on ties) is
// identical, so runs are bit-for-bit the same either way.
func (m *Machine) Run() error {
	if m.check == nil && m.violation == nil {
		if len(m.cores) == 1 {
			// Single core: no arbitration, so the instruction and cycle
			// totals can ride in locals (registers) across the whole trace
			// and land on the core once. access still charges rare-path
			// cycles (writeback races, L2 demand) to c.cycles directly;
			// the two pools are disjoint, so the final flush is exact.
			c := m.cores[0]
			var ins, cyc int64
			for _, a := range c.trace[c.pos:] {
				ins += int64(a.Think) + 1
				cyc += m.access(c, a)
			}
			c.instructions += ins
			c.cycles += cyc
			c.pos = len(c.trace)
			return nil
		}
		for {
			var next *core
			for _, c := range m.cores {
				if c.pos >= len(c.trace) {
					continue
				}
				if next == nil || c.cycles < next.cycles {
					next = c
				}
			}
			if next == nil {
				return nil
			}
			next.instructions += int64(next.trace[next.pos].Think) + 1
			next.cycles += m.access(next, next.trace[next.pos])
			next.pos++
		}
	}
	for {
		more, err := m.Step()
		if err != nil || !more {
			return err
		}
	}
}

// RunContext is Run with cooperative cancellation: every checkEvery steps
// (zero or negative means 4096, memsys's default stride) the context is
// polled and onCheckpoint, when non-nil, receives the number of steps
// executed so far.
func (m *Machine) RunContext(ctx context.Context, checkEvery int, onCheckpoint func(done int64)) error {
	if checkEvery <= 0 {
		checkEvery = 4096
	}
	// The inspector fires at exact GLOBAL access counts (base + done), so a
	// resumed run continues the same stride grid the interrupted one used
	// and the frame sequence stays a pure function of (config, traces,
	// stride) regardless of how the run was sliced into calls.
	base := m.accessesDone()
	var inspect, nextInspect int64
	if m.inspectFn != nil && m.inspectEvery > 0 {
		inspect = m.inspectEvery
		nextInspect = (base/inspect + 1) * inspect
	}
	if m.check == nil && m.violation == nil {
		return m.runContextFast(ctx, int64(checkEvery), base, inspect, nextInspect, onCheckpoint)
	}
	var done int64
	for {
		more, err := m.Step()
		if err != nil {
			return err
		}
		if !more {
			if inspect > 0 && base+done != nextInspect-inspect {
				m.inspectFn(base + done)
			}
			if onCheckpoint != nil {
				onCheckpoint(done)
			}
			return ctx.Err()
		}
		done++
		if base+done == nextInspect {
			m.inspectFn(base + done)
			nextInspect += inspect
		}
		if done%int64(checkEvery) == 0 {
			if onCheckpoint != nil {
				onCheckpoint(done)
			}
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
}

// runBatch executes at most limit accesses of the tight checks-off
// arbitration loop and returns how many ran (short only when every trace
// is exhausted). It must stay a small dedicated function: inlining this
// loop into runContextFast's stride bookkeeping puts enough variables
// live across the m.access call that the register allocator spills on
// every iteration, costing ~25% of the stepper's throughput.
func (m *Machine) runBatch(limit int64) int64 {
	var ran int64
	for ran < limit {
		var next *core
		for _, c := range m.cores {
			if c.pos >= len(c.trace) {
				continue
			}
			if next == nil || c.cycles < next.cycles {
				next = c
			}
		}
		if next == nil {
			break
		}
		next.instructions += int64(next.trace[next.pos].Think) + 1
		next.cycles += m.access(next, next.trace[next.pos])
		next.pos++
		ran++
	}
	return ran
}

// runContextFast is RunContext's checks-off hot loop: the same tight
// arbitration Run uses (so the interleaving is bit-identical), batched to
// the nearest stride boundary so the inspection and checkpoint bookkeeping
// amortizes over thousands of accesses. This keeps an attached inspector's
// cost to the frame captures themselves.
func (m *Machine) runContextFast(ctx context.Context, checkEvery, base, inspect, nextInspect int64, onCheckpoint func(done int64)) error {
	var done int64
	untilCheck := checkEvery
	for {
		// Run up to the nearest stride boundary (checkpoint or inspection).
		batch := untilCheck
		if inspect > 0 {
			if ui := nextInspect - (base + done); ui < batch {
				batch = ui
			}
		}
		ran := m.runBatch(batch)
		done += ran
		if ran < batch { // every trace exhausted
			if inspect > 0 && base+done != nextInspect-inspect {
				m.inspectFn(base + done)
			}
			if onCheckpoint != nil {
				onCheckpoint(done)
			}
			return ctx.Err()
		}
		if inspect > 0 && base+done == nextInspect {
			m.inspectFn(base + done)
			nextInspect += inspect
		}
		if untilCheck -= ran; untilCheck == 0 {
			untilCheck = checkEvery
			if onCheckpoint != nil {
				onCheckpoint(done)
			}
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
}

// access executes one trace access on core c, including every bus
// transaction it triggers, and returns the cycles to charge to c's local
// clock. The caller applies the delta (and the instruction count, which is
// Think+1 by definition) so the single-core replay loop can accumulate both
// in registers; bus-side charges with no place in the delta — writeback
// races, interventions, the L2 demand fetch — still land on the cores'
// clocks directly inside the helpers, which is exact because the caller
// adds the returned delta before the next arbitration decision. memAccesses
// needs no counter of its own: every trace entry is one memory access, so
// Stats derives it from the trace position.
func (m *Machine) access(c *core, a memtrace.Access) int64 {
	cyc := int64(a.Think) * int64(m.timing.NonMemInstr)

	pte, tlbHit := c.tlb.Lookup(a.Addr)
	if !tlbHit {
		cyc += int64(m.timing.TLBMiss)
	}
	if pte.Uncached {
		c.uncachedAcc++
		return cyc + int64(m.timing.Uncached)
	}

	isWrite := a.Op == memtrace.Write

	// Fast path: way-memoized L1 hit. The column mask governs replacement
	// only, so the tint lookup is skipped entirely on a hit, and the
	// line-address math runs only for the coherence transitions (or the
	// invariant checker) that need it.
	if way, st, ok := c.l1.HitFast(a.Addr, isWrite); ok {
		cyc += int64(m.timing.CacheHit)
		if isWrite && st == StateShared {
			// BusUpgr: claim ownership without a data transfer. Remote
			// copies can only be Shared here (SWMR), so no writeback races.
			lineAddr := m.g.LineBase(a.Addr)
			set, _ := c.l1.SetTagOf(a.Addr)
			m.bus.Upgrades++
			c.upgrades++
			m.invalidateRemotes(c, lineAddr)
			c.l1.SetAux(set, way, StateModified)
			m.dirtyCreated++
			m.noteWrite(c, lineAddr)
		} else if m.check != nil {
			if isWrite {
				m.noteWrite(c, m.g.LineBase(a.Addr))
			} else {
				m.noteReadHit(c, m.g.LineBase(a.Addr))
			}
		}
		return cyc
	}

	mask := c.tints.Mask(pte.Tint)
	lineAddr := m.g.LineBase(a.Addr)
	set, _ := c.l1.SetTagOf(a.Addr)

	var res cache.Result
	if isWrite {
		res = c.l1.Write(a.Addr, mask)
	} else {
		res = c.l1.Read(a.Addr, mask)
	}
	cyc += int64(m.timing.CacheHit)

	if res.Hit {
		st := c.l1.AuxAt(set, res.Way)
		switch {
		case isWrite && st == StateShared:
			// BusUpgr (hint-missed hit): same transition as the fast path.
			m.bus.Upgrades++
			c.upgrades++
			m.invalidateRemotes(c, lineAddr)
			c.l1.SetAux(set, res.Way, StateModified)
			m.dirtyCreated++
			m.noteWrite(c, lineAddr)
		case isWrite:
			m.noteWrite(c, lineAddr)
		default:
			m.noteReadHit(c, lineAddr)
		}
		return cyc
	}

	// L1 miss. The evicted victim leaves first: a dirty (Modified) victim is
	// written back into the shared L2 under this core's L2 column mask.
	if res.Evicted {
		evicted := c.l1.AddrOfTag(set, res.EvictedTag)
		if res.Writeback {
			m.l2Install(c, evicted)
			m.dirtyRetired++
			cyc += int64(m.timing.Writeback)
		}
		m.noteDrop(c, evicted)
	}

	// Bus transaction for the requested line.
	if isWrite {
		m.bus.ReadXs++
		m.invalidateRemotes(c, lineAddr)
	} else {
		m.bus.Reads++
		m.intervene(c, lineAddr)
	}

	// Fetch through the shared L2 under this core's column mask.
	l2miss := m.l2Demand(c, a, isWrite)

	if isWrite {
		c.l1.SetAux(set, res.Way, StateModified)
		m.dirtyCreated++
		m.noteWrite(c, lineAddr)
	} else {
		c.l1.SetAux(set, res.Way, StateShared)
		m.noteFill(c, lineAddr)
	}
	if m.observer != nil {
		m.observer.ObserveAccess(c.l2tint, a.Addr, l2miss)
	}
	return cyc
}

// invalidateRemotes serves the exclusive half of BusRdX/BusUpgr: every other
// core's copy of lineAddr is destroyed. A remote Modified copy wins the
// writeback race — its data is flushed to the shared L2 an instant before
// the invalidation lands, so modified data is never lost.
func (m *Machine) invalidateRemotes(req *core, lineAddr memory.Addr) {
	for _, r := range m.cores {
		if r == req {
			continue
		}
		w, ok := r.l1.Probe(lineAddr)
		if !ok {
			continue
		}
		set, _ := r.l1.SetTagOf(lineAddr)
		if r.l1.AuxAt(set, w) == StateModified {
			m.l2Install(r, lineAddr)
			m.dirtyRetired++
			m.bus.WritebackRaces++
			req.cycles += int64(m.timing.Writeback)
		}
		r.l1.Invalidate(lineAddr)
		m.bus.Invalidations++
		r.invalidationsRecv++
		m.noteDrop(r, lineAddr)
	}
}

// intervene serves a BusRd: if some core holds lineAddr Modified, it supplies
// the data — written back to the shared L2 so the requestor's fill finds it —
// and downgrades its own copy to Shared (clean). SWMR guarantees at most one
// such copy exists.
func (m *Machine) intervene(req *core, lineAddr memory.Addr) {
	for _, r := range m.cores {
		if r == req {
			continue
		}
		w, ok := r.l1.Probe(lineAddr)
		if !ok {
			continue
		}
		set, _ := r.l1.SetTagOf(lineAddr)
		if r.l1.AuxAt(set, w) != StateModified {
			continue
		}
		m.l2Install(r, lineAddr)
		m.dirtyRetired++
		r.l1.SetLineDirty(set, w, false)
		r.l1.SetAux(set, w, StateShared)
		m.bus.Interventions++
		req.interventions++
		req.cycles += int64(m.timing.Writeback)
		return
	}
}

// l2Install lands a writeback from core c (an evicted dirty victim, an
// intervention flush, or an invalidation-race flush) in the shared L2 under
// c's L2 column mask.
func (m *Machine) l2Install(c *core, lineAddr memory.Addr) {
	m.l2.Write(lineAddr, m.l2tints.Mask(c.l2tint))
}

// l2Demand performs core c's demand access at the shared L2, mirroring
// memsys.l2Access: L2HitCycles on every probe, MissPenalty (plus Writeback
// for a dirty L2 victim) when the L2 misses too.
func (m *Machine) l2Demand(c *core, a memtrace.Access, isWrite bool) bool {
	mask := m.l2tints.Mask(c.l2tint)
	var res cache.Result
	if isWrite {
		res = m.l2.Write(a.Addr, mask)
	} else {
		res = m.l2.Read(a.Addr, mask)
	}
	c.l2Accesses++
	c.cycles += int64(m.l2Hit)
	if !res.Hit {
		c.l2Misses++
		c.cycles += int64(m.timing.MissPenalty)
		if res.Writeback {
			c.cycles += int64(m.timing.Writeback)
		}
	}
	m.l2Demands++
	if m.remapSched != nil {
		for m.remapPos < len(m.remapSched) && m.remapSched[m.remapPos].AfterL2Accesses <= m.l2Demands {
			ev := m.remapSched[m.remapPos]
			// Validated by SetRemapSchedule; SetMask cannot fail here.
			_ = m.l2tints.SetMask(m.cores[ev.Core].l2tint, ev.Mask)
			m.remapPos++
		}
	}
	return !res.Hit
}
