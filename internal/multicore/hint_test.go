package multicore

import (
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
)

// Regression tests for the way-memoization edges the coherence protocol
// adds on top of the cache's own: an MSI downgrade leaves the hinted line
// resident (so the hint must keep working and surface the *new* state), and
// a remote invalidation destroys it (so the hint must not fabricate a hit).
// The tests drive m.access directly — white-box, but the exact interleaving
// is the point.

func hintMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(Config{
		Geometry:    memory.MustGeometry(32, 4096),
		L1:          cache.Config{LineBytes: 32, NumSets: 4, NumWays: 2},
		L2:          cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
		Timing:      memsys.DefaultTiming,
		L2HitCycles: 6,
		Traces:      []memtrace.Trace{{}, {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHintSurvivesMSIDowngrade(t *testing.T) {
	m := hintMachine(t)
	c0, c1 := m.cores[0], m.cores[1]
	addr := memory.Addr(0x40)

	// core0 writes: fills Modified, hint points at the line.
	m.access(c0, memtrace.Access{Addr: addr, Op: memtrace.Write})
	set, _ := c0.l1.SetTagOf(addr)
	if w, st, ok := c0.l1.HitFast(addr, false); !ok || st != StateModified {
		t.Fatalf("after write: hint hit=%v state=%s, want hit in M", ok, StateName(st))
	} else if c0.l1.HintedWay(set) != w {
		t.Fatal("hint does not point at the written line")
	}

	// core1 reads: intervention downgrades core0's copy M→S in place. The
	// hinted line stays resident, so the hint must still hit — and must
	// return the downgraded state, not a stale M.
	m.access(c1, memtrace.Access{Addr: addr, Op: memtrace.Read})
	if _, st, ok := c0.l1.HitFast(addr, false); !ok {
		t.Fatal("MSI downgrade broke the hint for a still-resident line")
	} else if st != StateShared {
		t.Fatalf("hint returned state %s after downgrade, want S", StateName(st))
	}

	// core0 writes again through the hint: the Shared state must trigger a
	// BusUpgr that invalidates core1's copy and leaves core0 Modified.
	upgrades := m.bus.Upgrades
	m.access(c0, memtrace.Access{Addr: addr, Op: memtrace.Write})
	if m.bus.Upgrades != upgrades+1 {
		t.Fatalf("hint-path write on S: %d upgrades, want %d", m.bus.Upgrades, upgrades+1)
	}
	if _, st, ok := c0.l1.HitFast(addr, false); !ok || st != StateModified {
		t.Fatalf("after upgrade: hint hit=%v state=%s, want hit in M", ok, StateName(st))
	}
	if _, ok := c1.l1.Probe(addr); ok {
		t.Fatal("BusUpgr left the remote copy resident")
	}
}

func TestHintDroppedByRemoteInvalidation(t *testing.T) {
	m := hintMachine(t)
	c0, c1 := m.cores[0], m.cores[1]
	addr := memory.Addr(0x80)

	// Both cores read: Shared everywhere, both hints point at the line.
	m.access(c0, memtrace.Access{Addr: addr, Op: memtrace.Read})
	m.access(c1, memtrace.Access{Addr: addr, Op: memtrace.Read})
	if _, _, ok := c1.l1.HitFast(addr, false); !ok {
		t.Fatal("shared fill not reachable through core1's hint")
	}

	// core0 writes: BusUpgr invalidates core1's copy. core1's hint must not
	// fabricate a hit afterwards, in either the fast or the full path.
	m.access(c0, memtrace.Access{Addr: addr, Op: memtrace.Write})
	if _, _, ok := c1.l1.HitFast(addr, false); ok {
		t.Fatal("core1's hint fabricated a hit on an invalidated line")
	}
	if _, ok := c1.l1.Probe(addr); ok {
		t.Fatal("invalidated line still probes resident on core1")
	}
}
