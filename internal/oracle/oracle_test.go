package oracle

import "testing"

// addrFor builds the address that maps to (set, tag) for geometry (lineBytes,
// numSets).
func addrFor(lineBytes, numSets, set int, tag uint64) uint64 {
	return (tag*uint64(numSets) + uint64(set)) * uint64(lineBytes)
}

func newTestCache(t *testing.T, policy string, ways int) *Cache {
	t.Helper()
	c, err := NewCache(Config{LineBytes: 16, NumSets: 4, NumWays: ways, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLRUVictimOrder(t *testing.T) {
	c := newTestCache(t, "lru", 4)
	all := uint64(0b1111)
	// Fill ways 0..3 with tags 0..3; access order is also fill order.
	for tag := uint64(0); tag < 4; tag++ {
		res := c.Access(addrFor(16, 4, 0, tag), false, all)
		if res.Hit || res.Way != int(tag) {
			t.Fatalf("fill %d: got %+v", tag, res)
		}
	}
	// Re-touch tag 0 so tag 1 is now least recent.
	if res := c.Access(addrFor(16, 4, 0, 0), false, all); !res.Hit {
		t.Fatalf("expected hit on tag 0: %+v", res)
	}
	res := c.Access(addrFor(16, 4, 0, 9), false, all)
	if !res.Evicted || res.EvictedTag != 1 {
		t.Fatalf("expected tag 1 evicted, got %+v", res)
	}
}

func TestLRUMaskedVictim(t *testing.T) {
	c := newTestCache(t, "lru", 4)
	for tag := uint64(0); tag < 4; tag++ {
		c.Access(addrFor(16, 4, 0, tag), false, 0b1111)
	}
	// Restrict to ways {2,3}: the least recent of those (way 2, tag 2) goes.
	res := c.Access(addrFor(16, 4, 0, 9), false, 0b1100)
	if res.Way != 2 || res.EvictedTag != 2 {
		t.Fatalf("masked victim: got %+v, want way 2 evicting tag 2", res)
	}
}

func TestFIFOHitsDoNotReorder(t *testing.T) {
	c := newTestCache(t, "fifo", 2)
	all := uint64(0b11)
	c.Access(addrFor(16, 4, 0, 0), false, all)
	c.Access(addrFor(16, 4, 0, 1), false, all)
	// Hit tag 0 repeatedly; under FIFO it is still the first out.
	for i := 0; i < 5; i++ {
		c.Access(addrFor(16, 4, 0, 0), false, all)
	}
	res := c.Access(addrFor(16, 4, 0, 2), false, all)
	if res.EvictedTag != 0 {
		t.Fatalf("FIFO evicted tag %d, want 0: %+v", res.EvictedTag, res)
	}
}

func TestPLRUForcedTurn(t *testing.T) {
	c := newTestCache(t, "plru", 4)
	all := uint64(0b1111)
	for tag := uint64(0); tag < 4; tag++ {
		c.Access(addrFor(16, 4, 0, tag), false, all)
	}
	// After touching 0,1,2,3 in order every pointer aims left: victim is 0.
	res := c.Access(addrFor(16, 4, 0, 9), false, all)
	if res.Way != 0 {
		t.Fatalf("PLRU unmasked victim way %d, want 0", res.Way)
	}
	// Restricted to the right subtree the root turn is forced: victim is 2.
	res = c.Access(addrFor(16, 4, 0, 10), false, 0b1100)
	if res.Way != 2 {
		t.Fatalf("PLRU forced-turn victim way %d, want 2", res.Way)
	}
}

func TestRandomStaysInMask(t *testing.T) {
	c := newTestCache(t, "random", 8)
	mask := uint64(0b10100100) // ways 2, 5, 7
	for i := uint64(0); i < 200; i++ {
		res := c.Access(addrFor(16, 4, 1, 100+i), false, mask)
		if res.Filled && res.Way != 2 && res.Way != 5 && res.Way != 7 {
			t.Fatalf("random victim way %d outside mask %b", res.Way, mask)
		}
	}
}

func TestInvalidWayPreferred(t *testing.T) {
	for _, policy := range []string{"lru", "plru", "fifo", "random"} {
		c := newTestCache(t, policy, 4)
		c.Access(addrFor(16, 4, 0, 0), false, 0b0001) // way 0 valid
		// Ways 1-3 invalid; mask {0,3} must pick invalid way 3, not evict.
		res := c.Access(addrFor(16, 4, 0, 1), false, 0b1001)
		if res.Way != 3 || res.Evicted {
			t.Fatalf("%s: got %+v, want fill into invalid way 3 with no eviction", policy, res)
		}
	}
}

func TestEmptyMaskWidens(t *testing.T) {
	c := newTestCache(t, "lru", 4)
	res := c.Access(addrFor(16, 4, 0, 0), false, 0)
	if !res.Filled || res.Way != 0 {
		t.Fatalf("empty mask: got %+v", res)
	}
	// Bits above the way count are ignored; all-high mask acts empty → all.
	res = c.Access(addrFor(16, 4, 0, 1), false, 0xF0)
	if !res.Filled || res.Way != 1 {
		t.Fatalf("out-of-range mask: got %+v", res)
	}
}

func TestWriteBackDirtyAndWriteback(t *testing.T) {
	c := newTestCache(t, "lru", 1)
	a := addrFor(16, 4, 2, 0)
	b := addrFor(16, 4, 2, 1)
	c.Access(a, true, 1) // write-allocate, dirty
	res := c.Access(b, false, 1)
	if !res.Evicted || !res.Writeback || res.EvictedTag != 0 {
		t.Fatalf("dirty eviction: got %+v", res)
	}
	if st := c.Stats(); st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c, err := NewCache(Config{LineBytes: 16, NumSets: 4, NumWays: 2, Policy: "lru", WriteThrough: true})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Access(addrFor(16, 4, 0, 0), true, 0b11)
	if res.Hit || res.Filled || res.Way != -1 {
		t.Fatalf("write-through write miss must not allocate: %+v", res)
	}
	// A read installs the line; a subsequent write hits it but never dirties.
	c.Access(addrFor(16, 4, 0, 0), false, 0b11)
	res = c.Access(addrFor(16, 4, 0, 0), true, 0b11)
	if !res.Hit || c.LineAt(0, res.Way).Dirty {
		t.Fatalf("write-through hit dirtied the line: %+v", res)
	}
	c.Access(addrFor(16, 4, 0, 1), false, 0b01) // evict from way 0
	if st := c.Stats(); st.Writebacks != 0 {
		t.Fatalf("write-through cache performed %d writebacks", st.Writebacks)
	}
}

func TestFillDoesNotCountDemand(t *testing.T) {
	c := newTestCache(t, "lru", 2)
	res := c.Fill(addrFor(16, 4, 0, 0), 0b11)
	if !res.Filled {
		t.Fatalf("prefetch fill: got %+v", res)
	}
	if st := c.Stats(); st.Accesses != 0 || st.Misses != 0 || st.Fills != 1 {
		t.Fatalf("prefetch fill counted demand events: %+v", st)
	}
	// A fill of a resident line is a no-op that reports the way.
	res = c.Fill(addrFor(16, 4, 0, 0), 0b11)
	if !res.Hit || res.Filled {
		t.Fatalf("resident fill: got %+v", res)
	}
}

func TestSystemScratchpadAndUncached(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Cache:      Config{LineBytes: 16, NumSets: 4, NumWays: 2, Policy: "lru"},
		PageBytes:  256,
		TLBEntries: 4,
		TLBWays:    2,
		Timing: Timing{NonMemInstr: 1, CacheHit: 1, MissPenalty: 20, Writeback: 5,
			ScratchpadHit: 1, Uncached: 20, TLBMiss: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.PlaceScratch(0x1000, 256)
	sys.SetUncached(0x2000, 256)

	r := sys.Access(0x1010, false, 0)
	if !r.Scratchpad || r.Cached || r.Cycles != 1 {
		t.Fatalf("scratchpad access: %+v", r)
	}
	if st := sys.TLBStats(); st.Accesses != 0 {
		t.Fatalf("scratchpad access consulted the TLB: %+v", st)
	}

	r = sys.Access(0x2010, false, 0)
	if !r.Uncached || r.Cached {
		t.Fatalf("uncached access: %+v", r)
	}
	// Uncached still pays the TLB walk on first touch: 4 + 20. (The access
	// instruction itself costs the uncached latency, not NonMemInstr.)
	if r.Cycles != 24 {
		t.Fatalf("uncached cycles = %d, want 24", r.Cycles)
	}

	// Plain cached miss then hit: TLBMiss + CacheHit + MissPenalty, then
	// CacheHit alone.
	r = sys.Access(0x3000, false, 0)
	if r.Cache.Hit || r.Cycles != 4+1+20 {
		t.Fatalf("cold miss: %+v", r)
	}
	r = sys.Access(0x3000, false, 0)
	if !r.Cache.Hit || !r.TLBHit || r.Cycles != 1 {
		t.Fatalf("warm hit: %+v", r)
	}
}

func TestSystemSetMaskAndRetint(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Cache:      Config{LineBytes: 16, NumSets: 4, NumWays: 4, Policy: "lru"},
		PageBytes:  256,
		TLBEntries: 4,
		TLBWays:    2,
		Timing:     Timing{NonMemInstr: 1, CacheHit: 1, MissPenalty: 20, Writeback: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.DefineTint(1, 0b0011)
	if n := sys.Retint(0x1000, 512, 1); n != 2 {
		t.Fatalf("retint rewrote %d pages, want 2", n)
	}
	tintID, mask := sys.ResolveMask(0x1000)
	if tintID != 1 || mask != 0b0011 {
		t.Fatalf("resolve: tint %d mask %b", tintID, mask)
	}
	if err := sys.SetMask(1, 0b1100); err != nil {
		t.Fatal(err)
	}
	if _, mask = sys.ResolveMask(0x1000); mask != 0b1100 {
		t.Fatalf("mask after SetMask: %b", mask)
	}
	if err := sys.SetMask(1, 0); err == nil {
		t.Fatal("zero mask accepted")
	}
	if err := sys.SetMask(1, 0b10000); err == nil {
		t.Fatal("out-of-width mask accepted")
	}
	if err := sys.SetMask(9, 0b0001); err == nil {
		t.Fatal("unknown tint accepted")
	}
}

func TestSystemRetintDropsAllASIDCopies(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Cache:      Config{LineBytes: 16, NumSets: 4, NumWays: 4, Policy: "lru"},
		PageBytes:  256,
		TLBEntries: 8,
		TLBWays:    4,
		Timing:     Timing{NonMemInstr: 1, CacheHit: 1, MissPenalty: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.DefineTint(1, 0b0001)
	// Cache the page's translation under two ASIDs.
	sys.Access(0x1000, false, 0)
	sys.SetASID(1)
	sys.Access(0x1000, false, 0)
	flushesBefore := sys.TLBStats().Flushes
	sys.Retint(0x1000, 256, 1)
	if got := sys.TLBStats().Flushes - flushesBefore; got != 2 {
		t.Fatalf("retint flushed %d TLB entries, want 2 (one per ASID)", got)
	}
	// Both ASIDs must now miss and re-walk.
	if r := sys.Access(0x1000, false, 0); r.TLBHit || r.Tint != 1 {
		t.Fatalf("ASID 1 after retint: %+v", r)
	}
	sys.SetASID(0)
	if r := sys.Access(0x1000, false, 0); r.TLBHit || r.Tint != 1 {
		t.Fatalf("ASID 0 after retint: %+v", r)
	}
}
