package oracle

// Naive replacement policies. Each one is written the obvious way — explicit
// per-set recency lists and queues, an explicit pointer tree for PLRU,
// linear scans everywhere — so that a reader can check it against the
// paper's prose directly. None of this code is shared with
// internal/replacement; agreement between the two is what internal/conform
// verifies.
//
// The contract mirrors the production protocol exactly:
//   - touch is called on every hit and after every fill;
//   - victim is called on a miss that allocates, with the permissible-column
//     set and the current validity of each way, and must prefer a permitted
//     invalid way (lowest index) when one exists;
//   - invalidate is called when a line is dropped without replacement;
//   - reset is called after a whole-cache flush.

type policy interface {
	touch(set, way int)
	victim(set int, permitted, valid []bool) int
	invalidate(set, way int)
	reset()
	name() string
}

func newPolicy(kind string, numSets, numWays int) policy {
	switch kind {
	case "lru":
		return newLRUList(numSets, numWays)
	case "plru":
		return newPLRUTree(numSets, numWays)
	case "fifo":
		return newFIFOQueue(numSets, numWays)
	case "random":
		// Seed 1 matches replacement.New, which seeds its generator with 1
		// so simulations are reproducible.
		return newRandomPick(numWays, 1)
	default:
		return nil
	}
}

// lowestPermittedInvalid returns the lowest-indexed permitted way that does
// not currently hold a valid line, or -1.
func lowestPermittedInvalid(permitted, valid []bool) int {
	for w := range permitted {
		if permitted[w] && !valid[w] {
			return w
		}
	}
	return -1
}

// remove deletes the first occurrence of way from list.
func remove(list []int, way int) []int {
	for i, w := range list {
		if w == way {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func contains(list []int, way int) bool {
	for _, w := range list {
		if w == way {
			return true
		}
	}
	return false
}

// lruList is least-recently-used with an explicit recency list per set,
// ordered least- to most-recently touched. Ways not on the list have never
// been touched (or were invalidated), which makes them older than every
// listed way; ties among them go to the lowest index, matching the
// production policy's zero-stamp tie-break.
type lruList struct {
	numWays int
	order   [][]int
}

func newLRUList(numSets, numWays int) *lruList {
	return &lruList{numWays: numWays, order: make([][]int, numSets)}
}

func (p *lruList) touch(set, way int) {
	p.order[set] = append(remove(p.order[set], way), way)
}

func (p *lruList) victim(set int, permitted, valid []bool) int {
	if w := lowestPermittedInvalid(permitted, valid); w >= 0 {
		return w
	}
	// Never-touched permitted ways are the oldest; lowest index wins.
	for w := 0; w < p.numWays; w++ {
		if permitted[w] && !contains(p.order[set], w) {
			return w
		}
	}
	// Otherwise the least recently touched permitted way.
	for _, w := range p.order[set] {
		if permitted[w] {
			return w
		}
	}
	panic("oracle: lru victim with no permitted way")
}

func (p *lruList) invalidate(set, way int) { p.order[set] = remove(p.order[set], way) }

func (p *lruList) reset() {
	for i := range p.order {
		p.order[i] = nil
	}
}

func (p *lruList) name() string { return "lru" }

// fifoQueue replaces in fill order with an explicit per-set queue. A hit on
// a queued way changes nothing; a touch on an unqueued way is the fill and
// appends it. Choosing a victim dequeues it — the production policy clears
// its presence bit the same way — and the subsequent fill's touch re-appends
// it at the tail.
type fifoQueue struct {
	numWays int
	queue   [][]int
}

func newFIFOQueue(numSets, numWays int) *fifoQueue {
	return &fifoQueue{numWays: numWays, queue: make([][]int, numSets)}
}

func (p *fifoQueue) touch(set, way int) {
	if !contains(p.queue[set], way) {
		p.queue[set] = append(p.queue[set], way)
	}
}

func (p *fifoQueue) victim(set int, permitted, valid []bool) int {
	if w := lowestPermittedInvalid(permitted, valid); w >= 0 {
		return w
	}
	// A valid way that is not queued was never filled as far as the policy
	// knows; its fill time is zero, older than every queued way. Unreachable
	// through the cache's access protocol, but kept for exact equivalence
	// with the production stamp comparison.
	for w := 0; w < p.numWays; w++ {
		if permitted[w] && !contains(p.queue[set], w) {
			return w
		}
	}
	for i, w := range p.queue[set] {
		if permitted[w] {
			p.queue[set] = append(p.queue[set][:i], p.queue[set][i+1:]...)
			return w
		}
	}
	panic("oracle: fifo victim with no permitted way")
}

func (p *fifoQueue) invalidate(set, way int) { p.queue[set] = remove(p.queue[set], way) }

func (p *fifoQueue) reset() {
	for i := range p.queue {
		p.queue[i] = nil
	}
}

func (p *fifoQueue) name() string { return "fifo" }

// plruNode is one node of an explicit tree-PLRU tree over the ways [lo, hi).
// Leaves (hi-lo == 1) have nil children. pointRight is the direction the
// pseudo-LRU walk takes from this node; a touch points the node away from
// the touched way.
type plruNode struct {
	lo, hi      int
	left, right *plruNode
	pointRight  bool
}

func buildPLRUTree(lo, hi int) *plruNode {
	n := &plruNode{lo: lo, hi: hi}
	if hi-lo > 1 {
		mid := (lo + hi) / 2
		n.left = buildPLRUTree(lo, mid)
		n.right = buildPLRUTree(mid, hi)
	}
	return n
}

// plruTree is tree pseudo-LRU with one explicit pointer tree per set.
type plruTree struct {
	numWays int
	roots   []*plruNode
}

func newPLRUTree(numSets, numWays int) *plruTree {
	if numWays&(numWays-1) != 0 || numWays == 0 {
		panic("oracle: tree PLRU requires a power-of-two way count")
	}
	p := &plruTree{numWays: numWays, roots: make([]*plruNode, numSets)}
	for i := range p.roots {
		p.roots[i] = buildPLRUTree(0, numWays)
	}
	return p
}

func (p *plruTree) touch(set, way int) {
	n := p.roots[set]
	for n.left != nil {
		if way < n.left.hi {
			n.pointRight = true
			n = n.left
		} else {
			n.pointRight = false
			n = n.right
		}
	}
}

// anyPermitted reports whether any way in [lo, hi) is permitted.
func anyPermitted(permitted []bool, lo, hi int) bool {
	for w := lo; w < hi; w++ {
		if permitted[w] {
			return true
		}
	}
	return false
}

func (p *plruTree) victim(set int, permitted, valid []bool) int {
	if w := lowestPermittedInvalid(permitted, valid); w >= 0 {
		return w
	}
	n := p.roots[set]
	for n.left != nil {
		goRight := n.pointRight
		// Force the turn when the preferred subtree holds no permitted way.
		if goRight && !anyPermitted(permitted, n.right.lo, n.right.hi) {
			goRight = false
		} else if !goRight && !anyPermitted(permitted, n.left.lo, n.left.hi) {
			goRight = true
		}
		if goRight {
			n = n.right
		} else {
			n = n.left
		}
	}
	return n.lo
}

func (p *plruTree) invalidate(set, way int) {}

func (p *plruTree) reset() {
	for _, root := range p.roots {
		var clear func(*plruNode)
		clear = func(n *plruNode) {
			if n == nil {
				return
			}
			n.pointRight = false
			clear(n.left)
			clear(n.right)
		}
		clear(root)
	}
}

func (p *plruTree) name() string { return "plru" }

// randomPick picks a uniformly random permitted way. The generator is the
// same xorshift64* the production policy uses, with the same seed, because
// victim-for-victim equivalence requires drawing the identical sequence;
// the independence is in the selection code around it.
type randomPick struct {
	numWays int
	seed    uint64
	state   uint64
}

func newRandomPick(numWays int, seed uint64) *randomPick {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &randomPick{numWays: numWays, seed: seed, state: seed}
}

func (p *randomPick) next() uint64 {
	x := p.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	p.state = x
	return x * 0x2545f4914f6cdd1d
}

func (p *randomPick) touch(set, way int) {}

func (p *randomPick) victim(set int, permitted, valid []bool) int {
	if w := lowestPermittedInvalid(permitted, valid); w >= 0 {
		return w
	}
	var ways []int
	for w := 0; w < p.numWays; w++ {
		if permitted[w] {
			ways = append(ways, w)
		}
	}
	if len(ways) == 0 {
		panic("oracle: random victim with no permitted way")
	}
	return ways[int(p.next()%uint64(len(ways)))]
}

func (p *randomPick) invalidate(set, way int) {}
func (p *randomPick) reset()                  { p.state = p.seed }
func (p *randomPick) name() string            { return "random" }
