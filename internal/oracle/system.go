package oracle

import "fmt"

// Timing mirrors the production machine's cycle costs. The fields are a
// copy, not an import: the oracle re-derives every cycle count from the
// paper's timing model so an accounting bug in memsys cannot repeat here.
type Timing struct {
	NonMemInstr       int
	CacheHit          int
	MissPenalty       int
	Writeback         int
	ScratchpadHit     int
	Uncached          int
	TLBMiss           int
	WriteThroughStore int
}

// SystemConfig assembles a reference System.
type SystemConfig struct {
	Cache      Config
	PageBytes  int
	TLBEntries int
	TLBWays    int
	Timing     Timing
}

// pte carries the per-page cache-management state: the page's tint and the
// uncached bit.
type pte struct {
	tint     uint16
	uncached bool
}

// tlbEntry is one cached translation. Entries live in per-set slices kept
// in least- to most-recently-used order, so the LRU victim is always the
// slice head — an explicit recency list instead of stamps.
type tlbEntry struct {
	pn   uint64
	asid uint16
	e    pte
}

// TLBStats mirrors the production TLB counters.
type TLBStats struct {
	Accesses int64
	Hits     int64
	Misses   int64
	Flushes  int64
}

// TintStats counts one tint's cached accesses and misses.
type TintStats struct {
	Accesses int64
	Misses   int64
}

// scratchRegion is one dedicated-SRAM address range.
type scratchRegion struct {
	base, size uint64
}

// StepResult reports everything one access did, for step-level comparison
// against the production machine.
type StepResult struct {
	Scratchpad bool
	Uncached   bool
	TLBHit     bool
	Tint       uint16
	Mask       uint64
	Cache      Result // zero unless the access reached the cache
	Cached     bool   // the access reached the cache
	Cycles     int64
}

// System is the naive reference memory system: scratchpad check, TLB with
// tint-extended PTEs, column cache, flat timing model.
type System struct {
	cfg     SystemConfig
	cache   *Cache
	masks   map[uint16]uint64 // tint → permissible-column bit vector
	pages   map[uint64]pte    // page number → entry; absent means default
	tlbSets [][]tlbEntry
	tlbWays int
	asid    uint16
	scratch []scratchRegion

	l2       *Cache // optional second level; nil when not attached
	l2Hit    int
	l2Masked bool

	tlbStats   TLBStats
	tintStats  map[uint16]*TintStats
	pageWrites int64

	instructions int64
	cycles       int64
	memAccesses  int64
	scratchAcc   int64
	uncachedAcc  int64
}

// SystemStats aggregates the machine-level counters the harness compares.
type SystemStats struct {
	Instructions       int64
	Cycles             int64
	MemAccesses        int64
	ScratchpadAccesses int64
	UncachedAccesses   int64
	Cache              Stats
	TLB                TLBStats
}

// NewSystem builds the reference machine. Tint 0 (the default tint) starts
// mapped to every column, like the production table.
func NewSystem(cfg SystemConfig) (*System, error) {
	c, err := NewCache(cfg.Cache)
	if err != nil {
		return nil, err
	}
	if cfg.PageBytes < cfg.Cache.LineBytes {
		return nil, fmt.Errorf("oracle: page size %d smaller than line size %d", cfg.PageBytes, cfg.Cache.LineBytes)
	}
	if cfg.TLBEntries <= 0 || cfg.TLBWays <= 0 || cfg.TLBEntries%cfg.TLBWays != 0 {
		return nil, fmt.Errorf("oracle: bad TLB shape %d entries × %d ways", cfg.TLBEntries, cfg.TLBWays)
	}
	allColumns := uint64(0)
	for w := 0; w < cfg.Cache.NumWays; w++ {
		allColumns |= 1 << uint(w)
	}
	s := &System{
		cfg:       cfg,
		cache:     c,
		masks:     map[uint16]uint64{0: allColumns},
		pages:     make(map[uint64]pte),
		tlbWays:   cfg.TLBWays,
		tintStats: make(map[uint16]*TintStats),
	}
	s.tlbSets = make([][]tlbEntry, cfg.TLBEntries/cfg.TLBWays)
	return s, nil
}

// Cache returns the reference cache.
func (s *System) Cache() *Cache { return s.cache }

// Stats snapshots the machine counters.
func (s *System) Stats() SystemStats {
	return SystemStats{
		Instructions:       s.instructions,
		Cycles:             s.cycles,
		MemAccesses:        s.memAccesses,
		ScratchpadAccesses: s.scratchAcc,
		UncachedAccesses:   s.uncachedAcc,
		Cache:              s.cache.Stats(),
		TLB:                s.tlbStats,
	}
}

// TintStats returns a copy of the per-tint counters.
func (s *System) TintStats() map[uint16]TintStats {
	out := make(map[uint16]TintStats, len(s.tintStats))
	for id, st := range s.tintStats {
		out[id] = *st
	}
	return out
}

// Masks returns a copy of the tint → column-vector table.
func (s *System) Masks() map[uint16]uint64 {
	out := make(map[uint16]uint64, len(s.masks))
	for id, m := range s.masks {
		out[id] = m
	}
	return out
}

// PageWrites returns the page-table entry updates performed.
func (s *System) PageWrites() int64 { return s.pageWrites }

// DefineTint registers a tint with the given column vector, mirroring
// NewTint + SetMask on the production table.
func (s *System) DefineTint(id uint16, mask uint64) { s.masks[id] = mask }

// SetMask remaps a registered tint, the paper's cheap repartitioning write.
func (s *System) SetMask(id uint16, mask uint64) error {
	if _, ok := s.masks[id]; !ok {
		return fmt.Errorf("oracle: unknown tint %d", id)
	}
	if mask == 0 {
		return fmt.Errorf("oracle: empty column mask for tint %d", id)
	}
	for w := s.cache.cfg.NumWays; w < 64; w++ {
		if mask&(1<<uint(w)) != 0 {
			return fmt.Errorf("oracle: mask %b references columns beyond the %d available", mask, s.cache.cfg.NumWays)
		}
	}
	s.masks[id] = mask
	return nil
}

// maskOf resolves a tint to its column vector; unknown tints resolve to the
// default tint's vector, like the production table.
func (s *System) maskOf(id uint16) uint64 {
	if m, ok := s.masks[id]; ok {
		return m
	}
	return s.masks[0]
}

// ResolveMask returns the tint and column vector governing addr according
// to the page table (not the TLB) — the harness uses it to pick the mask
// for explicit install steps.
func (s *System) ResolveMask(addr uint64) (uint16, uint64) {
	e := s.pages[addr/uint64(s.cfg.PageBytes)]
	return e.tint, s.maskOf(e.tint)
}

// pagesCovering lists the page numbers overlapping [base, base+size).
func (s *System) pagesCovering(base, size uint64) []uint64 {
	if size == 0 {
		return nil
	}
	var out []uint64
	for pn := base / uint64(s.cfg.PageBytes); pn <= (base+size-1)/uint64(s.cfg.PageBytes); pn++ {
		out = append(out, pn)
	}
	return out
}

// Retint is the paper §2.2 re-tinting operation: rewrite the entries of the
// pages overlapping [base, base+size) and flush every TLB copy of each page
// that changed. Returns the number of pages rewritten.
func (s *System) Retint(base, size uint64, id uint16) int {
	changed := 0
	for _, pn := range s.pagesCovering(base, size) {
		e := s.pages[pn]
		if e.tint == id {
			continue
		}
		e.tint = id
		s.pages[pn] = e
		s.pageWrites++
		changed++
		s.flushPage(pn)
	}
	return changed
}

// SetUncached marks the pages overlapping [base, base+size) uncached. Like
// the production page table's SetUncachedRange it does not flush TLB
// copies, so it is only safe before the first access — which is the only
// time the conformance harness applies it.
func (s *System) SetUncached(base, size uint64) int {
	changed := 0
	for _, pn := range s.pagesCovering(base, size) {
		e := s.pages[pn]
		if e.uncached {
			continue
		}
		e.uncached = true
		s.pages[pn] = e
		s.pageWrites++
		changed++
	}
	return changed
}

// flushPage drops every TLB copy of page pn, across ASIDs: the page table
// is shared, so a re-tint must invalidate all cached translations of the
// page or a stale tint would keep governing replacement.
func (s *System) flushPage(pn uint64) {
	set := s.tlbSets[pn%uint64(len(s.tlbSets))]
	kept := set[:0]
	for _, e := range set {
		if e.pn == pn {
			s.tlbStats.Flushes++
			continue
		}
		kept = append(kept, e)
	}
	s.tlbSets[pn%uint64(len(s.tlbSets))] = kept
}

// SetASID switches the address-space identifier; entries under other ASIDs
// stay resident but stop matching.
func (s *System) SetASID(id uint16) { s.asid = id }

// PlaceScratch dedicates [base, base+size) to the scratchpad.
func (s *System) PlaceScratch(base, size uint64) {
	s.scratch = append(s.scratch, scratchRegion{base: base, size: size})
}

func (s *System) inScratch(addr uint64) bool {
	for _, r := range s.scratch {
		if addr >= r.base && addr < r.base+r.size {
			return true
		}
	}
	return false
}

// tlbLookup resolves page pn through the naive TLB: a linear search of the
// set's recency list, hit moves the entry to the tail, miss walks the page
// table and installs at the tail, evicting the head when the set is full.
func (s *System) tlbLookup(pn uint64) (pte, bool) {
	s.tlbStats.Accesses++
	idx := pn % uint64(len(s.tlbSets))
	set := s.tlbSets[idx]
	for i, e := range set {
		if e.pn == pn && e.asid == s.asid {
			s.tlbStats.Hits++
			set = append(append(set[:i:i], set[i+1:]...), e)
			s.tlbSets[idx] = set
			return e.e, true
		}
	}
	s.tlbStats.Misses++
	e := s.pages[pn]
	if len(set) == s.tlbWays {
		set = set[1:]
	}
	s.tlbSets[idx] = append(set, tlbEntry{pn: pn, asid: s.asid, e: e})
	return e, false
}

// Access executes one trace access (think non-memory instructions, then the
// reference itself) and reports everything it did.
func (s *System) Access(addr uint64, write bool, think uint32) StepResult {
	t := s.cfg.Timing
	start := s.cycles
	s.instructions += int64(think) + 1
	s.cycles += int64(think) * int64(t.NonMemInstr)
	s.memAccesses++

	if s.inScratch(addr) {
		s.scratchAcc++
		s.cycles += int64(t.ScratchpadHit)
		return StepResult{Scratchpad: true, Cycles: s.cycles - start}
	}

	e, tlbHit := s.tlbLookup(addr / uint64(s.cfg.PageBytes))
	if !tlbHit {
		s.cycles += int64(t.TLBMiss)
	}
	if e.uncached {
		s.uncachedAcc++
		s.cycles += int64(t.Uncached)
		return StepResult{Uncached: true, TLBHit: tlbHit, Cycles: s.cycles - start}
	}

	mask := s.maskOf(e.tint)
	res := s.cache.Access(addr, write, mask)
	if write && s.cfg.Cache.WriteThrough {
		s.cycles += int64(t.WriteThroughStore)
	}
	st := s.tintStats[e.tint]
	if st == nil {
		st = &TintStats{}
		s.tintStats[e.tint] = st
	}
	st.Accesses++
	if !res.Hit {
		st.Misses++
	}
	s.cycles += int64(t.CacheHit)
	if !res.Hit {
		if s.l2 != nil {
			s.cycles += s.l2Access(addr, write, mask, res)
		} else {
			s.cycles += int64(t.MissPenalty)
			if res.Writeback {
				s.cycles += int64(t.Writeback)
			}
		}
	}
	return StepResult{
		TLBHit: tlbHit,
		Tint:   e.tint,
		Mask:   mask,
		Cache:  res,
		Cached: true,
		Cycles: s.cycles - start,
	}
}

// Install fills addr's line under mask without a demand access or TLB
// activity — the production InstallLine path.
func (s *System) Install(addr uint64, mask uint64) Result {
	return s.cache.Fill(addr, mask)
}

// FlushCache writes back and invalidates the whole cache.
func (s *System) FlushCache() { s.cache.FlushAll() }

// TLBStats returns the TLB counters.
func (s *System) TLBStats() TLBStats { return s.tlbStats }
