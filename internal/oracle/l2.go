package oracle

import "fmt"

// Reference L2. The production machine's optional second level
// (internal/memsys/l2.go) changes the timing and the traffic below the L1:
// L1 misses probe the L2, dirty L1 victims land there, and only L2 misses
// pay the main-memory penalty. This file re-derives that behavior on the
// naive Cache so the conformance harness can check masked-L2 machines too —
// including the mode where the tint's column vector restricts L2
// replacement as well (the "bit vector per level" reading of §2.2).

// EnableL2 attaches a reference second-level cache. hitCycles is charged on
// every L2 probe; an L2 miss adds the system MissPenalty (plus Writeback if
// the L2 evicts a dirty line). If masked is true the L1's tint-derived
// column vector restricts L2 replacement too. The L2 is always
// write-back/allocate, like the production attachment.
func (s *System) EnableL2(cfg Config, hitCycles int, masked bool) error {
	if cfg.LineBytes != s.cfg.Cache.LineBytes {
		return fmt.Errorf("oracle: L2 line size %d != system line size %d", cfg.LineBytes, s.cfg.Cache.LineBytes)
	}
	if cfg.WriteThrough {
		return fmt.Errorf("oracle: the L2 is write-back by construction")
	}
	c, err := NewCache(cfg)
	if err != nil {
		return err
	}
	s.l2, s.l2Hit, s.l2Masked = c, hitCycles, masked
	return nil
}

// L2 returns the reference second-level cache, or nil when none is attached.
func (s *System) L2() *Cache { return s.l2 }

// l2Access handles an L1 miss (and the L1's dirty victim, if any) at the
// second level, returning the cycles consumed below the L1.
func (s *System) l2Access(addr uint64, write bool, l1Mask uint64, l1 Result) int64 {
	t := s.cfg.Timing
	l2mask := uint64(1)<<uint(s.l2.cfg.NumWays) - 1
	if s.l2Masked {
		l2mask = l1Mask
	}
	// The L1's dirty victim is installed in the L2 (write-back path).
	if l1.Writeback {
		s.l2.Access(s.evictedAddr(addr, l1.EvictedTag), true, l2mask)
	}
	res := s.l2.Access(addr, write, l2mask)
	cycles := int64(s.l2Hit)
	if !res.Hit {
		cycles += int64(t.MissPenalty)
		if res.Writeback {
			cycles += int64(t.Writeback)
		}
	}
	return cycles
}

// evictedAddr reconstructs the byte address of the L1 victim displaced by an
// access to addr, with plain integer arithmetic — no shifts, mirroring the
// package's no-shared-bugs rule.
func (s *System) evictedAddr(addr uint64, evictedTag uint64) uint64 {
	lineBytes := uint64(s.cfg.Cache.LineBytes)
	set := (addr / lineBytes) % uint64(s.cfg.Cache.NumSets)
	return (evictedTag*uint64(s.cfg.Cache.NumSets) + set) * lineBytes
}
