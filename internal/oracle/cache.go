// Package oracle is the independent witness for the column-cache core: a
// deliberately naive re-implementation of the simulator's memory system —
// explicit per-set recency lists, straight-line victim searches, integer
// division instead of shift arithmetic, and no code or state shared with
// internal/cache, internal/replacement, internal/tint or internal/vm.
//
// It exists so internal/conform can drive the optimized production stack
// and this reference in lockstep and flag the first step where they
// disagree. The approach follows the argument of "Observing the Invisible"
// (arXiv:2007.12271) — trusting eviction behavior requires an independent
// observer of cache state — and the validation style of the way-memoization
// work (arXiv:0710.4703), which checks way-restricted lookups against an
// unrestricted reference.
//
// Nothing here is written for speed, and nothing here may import the
// packages it checks.
package oracle

import "fmt"

// Config describes the reference cache. Policy is one of "lru", "plru",
// "fifo", "random" — the same names internal/replacement registers.
type Config struct {
	LineBytes    int
	NumSets      int
	NumWays      int
	Policy       string
	WriteThrough bool // write-through/no-allocate instead of write-back/allocate
}

// Line is the metadata of one cache line.
type Line struct {
	Tag   uint64
	Valid bool
	Dirty bool
}

// Stats mirrors the production cache's event counters.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
	Fills      int64
}

// Result reports what one cache operation did.
type Result struct {
	Hit        bool
	Way        int // way hit or filled; -1 for a write-through miss
	Filled     bool
	Evicted    bool
	Writeback  bool
	EvictedTag uint64
}

// Cache is the naive reference column cache.
type Cache struct {
	cfg   Config
	sets  [][]Line
	pol   policy
	stats Stats

	// invalidated counts lines dropped via Invalidate, for the conservation
	// ledger: resident == fills - evictions - invalidated (between flushes).
	invalidated int64
}

// NewCache builds the reference cache.
func NewCache(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.NumSets <= 0 {
		return nil, fmt.Errorf("oracle: bad geometry %d sets × %dB lines", cfg.NumSets, cfg.LineBytes)
	}
	if cfg.NumWays < 1 || cfg.NumWays > 64 {
		return nil, fmt.Errorf("oracle: way count %d outside [1,64]", cfg.NumWays)
	}
	pol := newPolicy(cfg.Policy, cfg.NumSets, cfg.NumWays)
	if pol == nil {
		return nil, fmt.Errorf("oracle: unknown policy %q", cfg.Policy)
	}
	c := &Cache{cfg: cfg, pol: pol}
	c.sets = make([][]Line, cfg.NumSets)
	for i := range c.sets {
		c.sets[i] = make([]Line, cfg.NumWays)
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Invalidated returns how many lines Invalidate has dropped.
func (c *Cache) Invalidated() int64 { return c.invalidated }

// LineAt returns a copy of the line metadata at (set, way).
func (c *Cache) LineAt(set, way int) Line { return c.sets[set][way] }

// setAndTag decomposes addr with plain integer arithmetic — deliberately no
// shifts or masks, so a bug in the production bit twiddling cannot repeat
// here.
func (c *Cache) setAndTag(addr uint64) (int, uint64) {
	lineNum := addr / uint64(c.cfg.LineBytes)
	return int(lineNum % uint64(c.cfg.NumSets)), lineNum / uint64(c.cfg.NumSets)
}

// permitted expands a column bit vector into an explicit boolean per way,
// applying the production normalization: columns beyond the way count are
// ignored, and an effectively empty vector widens to every way.
func (c *Cache) permitted(mask uint64) []bool {
	out := make([]bool, c.cfg.NumWays)
	any := false
	for w := 0; w < c.cfg.NumWays; w++ {
		if mask&(1<<uint(w)) != 0 {
			out[w] = true
			any = true
		}
	}
	if !any {
		for w := range out {
			out[w] = true
		}
	}
	return out
}

func (c *Cache) valids(set int) []bool {
	out := make([]bool, c.cfg.NumWays)
	for w := range out {
		out[w] = c.sets[set][w].Valid
	}
	return out
}

// lookup finds addr's way in its set, or -1.
func (c *Cache) lookup(set int, tag uint64) int {
	for w := 0; w < c.cfg.NumWays; w++ {
		if c.sets[set][w].Valid && c.sets[set][w].Tag == tag {
			return w
		}
	}
	return -1
}

// Access performs one demand load or store of addr restricted to mask.
func (c *Cache) Access(addr uint64, write bool, mask uint64) Result {
	c.stats.Accesses++
	set, tag := c.setAndTag(addr)

	if w := c.lookup(set, tag); w >= 0 {
		c.stats.Hits++
		c.pol.touch(set, w)
		if write && !c.cfg.WriteThrough {
			c.sets[set][w].Dirty = true
		}
		return Result{Hit: true, Way: w}
	}

	c.stats.Misses++
	if write && c.cfg.WriteThrough {
		return Result{Hit: false, Way: -1}
	}
	return c.fill(set, tag, write && !c.cfg.WriteThrough, mask)
}

// Fill installs addr's line without counting a demand access — the prefetch
// path. A resident line is left untouched (no recency update, matching the
// production Fill).
func (c *Cache) Fill(addr uint64, mask uint64) Result {
	set, tag := c.setAndTag(addr)
	if w := c.lookup(set, tag); w >= 0 {
		return Result{Hit: true, Way: w}
	}
	return c.fill(set, tag, false, mask)
}

// fill victimizes a permitted way and installs (tag, dirty) there.
func (c *Cache) fill(set int, tag uint64, dirty bool, mask uint64) Result {
	w := c.pol.victim(set, c.permitted(mask), c.valids(set))
	res := Result{Hit: false, Way: w, Filled: true}
	if c.sets[set][w].Valid {
		res.Evicted = true
		res.EvictedTag = c.sets[set][w].Tag
		c.stats.Evictions++
		if c.sets[set][w].Dirty {
			res.Writeback = true
			c.stats.Writebacks++
		}
	}
	c.sets[set][w] = Line{Tag: tag, Valid: true, Dirty: dirty}
	c.stats.Fills++
	c.pol.touch(set, w)
	return res
}

// Invalidate drops addr's line if resident, without writeback.
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.setAndTag(addr)
	if w := c.lookup(set, tag); w >= 0 {
		c.sets[set][w] = Line{}
		c.pol.invalidate(set, w)
		c.invalidated++
		return true
	}
	return false
}

// FlushAll invalidates every line, counting writebacks for dirty ones, and
// resets replacement state.
func (c *Cache) FlushAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].Valid && c.sets[s][w].Dirty {
				c.stats.Writebacks++
			}
			c.sets[s][w] = Line{}
		}
	}
	c.pol.reset()
}

// ResidentLines counts valid lines.
func (c *Cache) ResidentLines() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].Valid {
				n++
			}
		}
	}
	return n
}

// Probe reports addr's way without touching policy state or counters.
func (c *Cache) Probe(addr uint64) (int, bool) {
	set, tag := c.setAndTag(addr)
	w := c.lookup(set, tag)
	return w, w >= 0
}
