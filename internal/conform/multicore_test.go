package conform

import "testing"

// The serial-equivalence acceptance sweep: hundreds of seeded machines —
// geometries, core counts, epoch lengths, replacement policies, L2
// partitions, mid-run remap schedules and the Checks mode all drawn from
// the seed — run through the serial and epoch-parallel steppers and
// compared on every counter, the full cache contents and the final column
// masks. Checks-on cases verify coherence invariants live at every barrier;
// checks-off cases exercise the production merge path (local-hit tails,
// direct-execution tail-window conflicts) and still end with the full
// structural invariant walk. Run under -race by `make conformance`, this is
// also the epoch stepper's data-race stress.
func TestMulticoreSerialEquivalenceSweep(t *testing.T) {
	cases := 500
	if testing.Short() {
		cases = 60
	}
	for seed := int64(1); seed <= int64(cases); seed++ {
		c := NewMCCase(seed)
		if d := RunMCCase(c); d != nil {
			t.Fatalf("seed %d (cores=%d epoch=%d partition=%v remap=%d events): %v",
				seed, len(c.Cfg.Traces), c.Epoch, c.Partition, len(c.Remap), d)
		}
	}
}

// The sweep's case generator must actually produce the variety it claims:
// across the first 100 seeds every epoch length in the axis, partitioned and
// unpartitioned machines, and at least one remap schedule have to appear.
func TestMCCaseGeneratorCoverage(t *testing.T) {
	epochs := map[int64]bool{}
	partitioned, unpartitioned, remapped, checksOn, checksOff := 0, 0, 0, 0, 0
	for seed := int64(1); seed <= 100; seed++ {
		c := NewMCCase(seed)
		epochs[c.Epoch] = true
		if c.Partition != nil {
			partitioned++
		} else {
			unpartitioned++
		}
		if len(c.Remap) > 0 {
			remapped++
		}
		if c.Cfg.Checks {
			checksOn++
		} else {
			checksOff++
		}
	}
	for _, k := range mcEpochs {
		if !epochs[k] {
			t.Errorf("epoch length %d never drawn", k)
		}
	}
	if partitioned == 0 || unpartitioned == 0 || remapped == 0 {
		t.Errorf("axis collapsed: partitioned=%d unpartitioned=%d remapped=%d",
			partitioned, unpartitioned, remapped)
	}
	// Checks gates two structurally different merge paths (per-hit note
	// records vs folded local-hit tails); the sweep must run both, and
	// neither may dwindle to a token share.
	if checksOn < 25 || checksOff < 25 {
		t.Errorf("checks axis collapsed: on=%d off=%d", checksOn, checksOff)
	}
}
