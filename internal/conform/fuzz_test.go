package conform

import (
	"bytes"
	"testing"

	"colcache/internal/memtrace"
)

// fuzzConfigs is the fixed matrix every fuzzed trace runs under: one
// multi-column and one single-column partition, write-back and
// write-through.
func fuzzConfigs() []Config {
	base := Config{
		LineBytes:     32,
		NumSets:       16,
		NumWays:       4,
		PageBytes:     512,
		TLBEntries:    8,
		TLBWays:       2,
		TLBMissCycles: 4,
		Tints:         []TintSpec{{Mask: 0b0011}, {Mask: 0b0100}},
		Regions: []RegionSpec{
			{Base: 0x0000, Size: 0x8000, Tint: 1},
			{Base: 0x8000, Size: 0x8000, Tint: 2},
		},
	}
	wt := base
	wt.WriteThrough = true
	wt.Policy = "fifo"
	base.Policy = "lru"
	return []Config{base, wt}
}

// FuzzConform feeds arbitrary bytes through the CCTRACE1 decoder; every
// trace that decodes is replayed differentially. The harness must never
// report a divergence (the two machines are consistent by construction) and
// neither side may panic, whatever the access pattern.
func FuzzConform(f *testing.F) {
	// Seed: a small valid trace touching both tint regions.
	var buf bytes.Buffer
	if err := memtrace.WriteBinary(&buf, memtrace.Trace{
		{Addr: 0x0040, Op: memtrace.Read},
		{Addr: 0x8040, Op: memtrace.Write, Think: 2},
		{Addr: 0x0040, Op: memtrace.Read},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("CCTRACE1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := memtrace.ReadBinaryLimit(bytes.NewReader(data), 4096)
		if err != nil {
			return // malformed input is the decoder's fuzz target's business
		}
		if len(tr) > 512 {
			tr = tr[:512]
		}
		script := make([]Step, 0, len(tr))
		for _, a := range tr {
			op := "read"
			if a.Op == memtrace.Write {
				op = "write"
			}
			// Clamp into the configured address space so the page map stays
			// bounded; think times are clamped to keep runs fast.
			script = append(script, Step{Op: op, Addr: a.Addr & 0xFFFF, Think: a.Think % 8})
		}
		for _, cfg := range fuzzConfigs() {
			c := Case{Name: "fuzz", Config: cfg, Script: script}
			if d := Run(c, Options{ContentCheckEvery: 32}); d != nil {
				t.Fatal(d.Error())
			}
		}
	})
}
