package conform

import (
	"path/filepath"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/oracle"
	"colcache/internal/replacement"
)

// TestRandomCases is the property sweep: seeded cases across geometry ×
// policy × tint-table × remap-timing axes must agree step for step.
func TestRandomCases(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 40
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		c := NewCase(seed)
		t.Run(c.Name, func(t *testing.T) {
			if d := Run(c, Options{}); d != nil {
				t.Fatal(d.Error())
			}
		})
	}
}

// TestCacheLevelCases runs the cache-level driver across every policy and
// geometry corner, including single-way caches.
func TestCacheLevelCases(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 20
	}
	geoms := []struct{ lineBytes, numSets, numWays int }{
		{16, 4, 1},
		{32, 8, 2},
		{32, 16, 4},
		{64, 32, 8},
	}
	for _, kind := range []replacement.Kind{replacement.LRU, replacement.TreePLRU, replacement.FIFO, replacement.Random} {
		for _, g := range geoms {
			for seed := int64(1); seed <= int64(n); seed++ {
				prod := mustCache(t, g.lineBytes, g.numSets, g.numWays, kind)
				ref := mustOracleCache(t, g.lineBytes, g.numSets, g.numWays, string(kind))
				steps := NewCacheSteps(seed, g.lineBytes, g.numSets, g.numWays)
				name := string(kind)
				if d := CompareCaches(name, prod, ref, steps, 32); d != nil {
					t.Fatalf("%s %dx%dx%d seed %d: %s", kind, g.numSets, g.numWays, g.lineBytes, seed, d.Detail)
				}
			}
		}
	}
}

func mustCache(t *testing.T, lineBytes, numSets, numWays int, kind replacement.Kind) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{LineBytes: lineBytes, NumSets: numSets, NumWays: numWays, Policy: kind})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustOracleCache(t *testing.T, lineBytes, numSets, numWays int, policy string) *oracle.Cache {
	t.Helper()
	c, err := oracle.NewCache(oracle.Config{LineBytes: lineBytes, NumSets: numSets, NumWays: numWays, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestGoldenTraces replays the committed workload traces through the full
// policy × write-mode matrix.
func TestGoldenTraces(t *testing.T) {
	cases, err := GoldenCases(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if d := Run(c, Options{}); d != nil {
				t.Fatal(d.Error())
			}
		})
	}
}

// maskIgnoringPolicy wraps a real policy but ignores the column mask on
// every nth Victim call — the classic column-caching bug where the
// replacement unit falls back to plain LRU. The harness must catch it.
type maskIgnoringPolicy struct {
	replacement.Policy
	n     int
	calls int
}

func (p *maskIgnoringPolicy) Victim(set int, mask replacement.Mask, valid func(way int) bool) int {
	p.calls++
	if p.calls%p.n == 0 {
		mask = ^replacement.Mask(0)
	}
	return p.Policy.Victim(set, mask, valid)
}

// TestMutationCaught injects a victim-selection bug through the
// NewWithPolicy seam and asserts the differential driver reports it. A
// harness that cannot see this bug is not testing anything.
func TestMutationCaught(t *testing.T) {
	const lineBytes, numSets, numWays = 32, 16, 4
	caught := 0
	for seed := int64(1); seed <= 20; seed++ {
		inner := replacement.NewLRU(numSets, numWays)
		prod, err := cache.NewWithPolicy(cache.Config{
			LineBytes: lineBytes, NumSets: numSets, NumWays: numWays,
			Policy: replacement.LRU,
		}, &maskIgnoringPolicy{Policy: inner, n: 7})
		if err != nil {
			t.Fatal(err)
		}
		ref := mustOracleCache(t, lineBytes, numSets, numWays, "lru")
		steps := NewCacheSteps(seed, lineBytes, numSets, numWays)
		if d := CompareCaches("mutant", prod, ref, steps, 16); d != nil {
			caught++
		}
	}
	if caught == 0 {
		t.Fatal("mask-ignoring victim selection survived 20 differential runs undetected")
	}
	t.Logf("mutation caught in %d/20 runs", caught)
}

// TestMinimize shrinks a failing case and checks the result still fails
// and got smaller. The failure is planted mid-script (a step the driver
// rejects), so both the truncation and deletion phases have work to do.
func TestMinimize(t *testing.T) {
	c := NewCase(3)
	if d := Run(c, Options{}); d != nil {
		t.Fatalf("seed case must pass before corruption: %s", d.Detail)
	}
	bad := c
	bad.Name = "forced-divergence"
	mid := len(c.Script) / 2
	bad.Script = append(append(append([]Step{}, c.Script[:mid]...), Step{Op: "bogus"}), c.Script[mid:]...)

	min, d := Minimize(bad, Options{})
	if d == nil {
		t.Fatal("Minimize lost the failure")
	}
	if len(min.Script) != 1 || min.Script[0].Op != "bogus" {
		t.Fatalf("expected the single planted step to survive, got %d steps: %+v", len(min.Script), min.Script)
	}
	if d2 := Run(min, Options{}); d2 == nil {
		t.Fatal("minimized case no longer fails")
	}

	// A passing case must come back untouched.
	if got, d := Minimize(c, Options{}); d != nil || len(got.Script) != len(c.Script) {
		t.Fatalf("passing case was modified by Minimize (d=%v)", d)
	}
}

// TestScratchpadExclusivity is the paper's scratchpad-emulation property
// (§2.3): lines owned by a tint with a private column, once resident, are
// never evicted by other tints' traffic.
func TestScratchpadExclusivity(t *testing.T) {
	const lineBytes, numSets, numWays = 32, 16, 4
	prod := mustCache(t, lineBytes, numSets, numWays, replacement.LRU)

	// Tint A owns way 0 exclusively; everyone else gets ways 1-3.
	maskA := replacement.Of(0)
	maskB := replacement.Range(1, numWays)

	// Preload one line per set for tint A.
	base := uint64(0)
	for s := 0; s < numSets; s++ {
		res := prod.Fill(base+uint64(s*lineBytes), maskA)
		if !res.Filled || res.Way != 0 {
			t.Fatalf("set %d: preload fill got %+v", s, res)
		}
	}
	// Heavy foreign traffic under mask B across many conflicting lines.
	span := uint64(8 * numSets * numWays * lineBytes)
	for i := uint64(0); i < 4096; i++ {
		addr := 0x100000 + (i*2654435761)%span
		addr -= addr % uint64(lineBytes)
		if res := prod.Write(addr, maskB); res.Filled && res.Way == 0 {
			t.Fatalf("foreign write %#x filled way 0, evicting the private column", addr)
		}
	}
	// Every preloaded line must still be resident in way 0.
	for s := 0; s < numSets; s++ {
		addr := base + uint64(s*lineBytes)
		if w := prod.WayOf(addr); w != 0 {
			t.Fatalf("set %d: preloaded line %#x no longer in way 0 (WayOf=%d)", s, addr, w)
		}
	}
}

// TestReproRoundTrip checks WriteCase/ReadCase preserve a case exactly
// enough to reproduce its run.
func TestReproRoundTrip(t *testing.T) {
	c := NewCase(11)
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := WriteCase(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCase(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != c.Name || len(got.Script) != len(c.Script) {
		t.Fatalf("round trip changed case: %q/%d steps vs %q/%d", got.Name, len(got.Script), c.Name, len(c.Script))
	}
	if d := Run(got, Options{}); d != nil {
		t.Fatalf("round-tripped case diverged: %s", d.Detail)
	}
}
