// Package conform is the differential conformance harness for the
// column-cache core: it drives the optimized production stack (cache,
// replacement, tint, vm, memsys) and the deliberately naive reference model
// in internal/oracle in lockstep over the same script, and reports the
// first step at which they disagree — on hit/miss, victim way, writeback,
// cycle count, TLB behavior, per-tint attribution, or raw cache contents.
//
// A script is more than a memory trace: it interleaves accesses with the
// software operations the paper's mechanism exists for — instant tint
// remaps (SetMask), page re-tinting, ASID switches, cache flushes, and
// prefetch-style installs — so repartitioning-while-resident is exercised,
// not just steady-state replacement.
//
// Cases are JSON-serializable so a failing case can be minimized and
// committed as a repro file.
package conform

import (
	"encoding/json"
	"fmt"
	"os"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/oracle"
	"colcache/internal/replacement"
	"colcache/internal/tint"
	"colcache/internal/vm"
)

// TintSpec declares one tint created at setup; its id is its index + 1
// (tint 0 is the built-in default).
type TintSpec struct {
	Mask uint64
}

// RegionSpec declares one address region configured at setup.
type RegionSpec struct {
	Base uint64
	Size uint64
	// Tint re-tints the region's pages at setup; 0 leaves them default.
	Tint uint16
	// Uncached marks the region's pages cache-bypassing.
	Uncached bool
	// Scratch places the region in dedicated scratchpad SRAM.
	Scratch bool
}

// Config fixes one machine configuration under test. The timing fields that
// are not listed use memsys.DefaultTiming values on both sides.
type Config struct {
	LineBytes int
	NumSets   int
	NumWays   int
	PageBytes int
	Policy    string
	// WriteThrough selects write-through/no-allocate instead of the default
	// write-back/allocate.
	WriteThrough bool
	TLBEntries   int
	TLBWays      int

	TLBMissCycles          int
	WriteThroughStoreCycle int

	// EnableL2 attaches a unified write-back second level below the column
	// cache on both sides. It shares the L1's line size and replacement
	// policy; L2Masked applies the tint-derived column vector at the L2 as
	// well (the memsys masked mode).
	EnableL2    bool `json:",omitempty"`
	L2Sets      int  `json:",omitempty"`
	L2Ways      int  `json:",omitempty"`
	L2HitCycles int  `json:",omitempty"`
	L2Masked    bool `json:",omitempty"`

	Tints   []TintSpec
	Regions []RegionSpec
}

// Step is one scripted operation.
type Step struct {
	// Op is one of "read", "write", "setmask", "retint", "asid", "flush",
	// "install".
	Op    string
	Addr  uint64 `json:",omitempty"`
	Think uint32 `json:",omitempty"`
	Tint  uint16 `json:",omitempty"`
	Mask  uint64 `json:",omitempty"`
	Base  uint64 `json:",omitempty"`
	Size  uint64 `json:",omitempty"`
	ASID  uint16 `json:",omitempty"`
}

// Case is one self-contained conformance run: a configuration plus the
// script driven through it.
type Case struct {
	Name   string
	Seed   int64 `json:",omitempty"`
	Config Config
	Script []Step
}

// timing returns the production timing for c: the defaults with the two
// case-varied fields applied.
func (c Config) timing() memsys.Timing {
	t := memsys.DefaultTiming
	t.TLBMiss = c.TLBMissCycles
	t.WriteThroughStore = c.WriteThroughStoreCycle
	return t
}

// oracleTiming mirrors timing() field by field into the oracle's own type.
func (c Config) oracleTiming() oracle.Timing {
	t := c.timing()
	return oracle.Timing{
		NonMemInstr:       t.NonMemInstr,
		CacheHit:          t.CacheHit,
		MissPenalty:       t.MissPenalty,
		Writeback:         t.Writeback,
		ScratchpadHit:     t.ScratchpadHit,
		Uncached:          t.Uncached,
		TLBMiss:           t.TLBMiss,
		WriteThroughStore: t.WriteThroughStore,
	}
}

func (c Config) writePolicy() cache.WritePolicy {
	if c.WriteThrough {
		return cache.WriteThroughNoAllocate
	}
	return cache.WriteBackAllocate
}

// buildProduction assembles the production machine for c, with per-tint
// statistics enabled.
func buildProduction(c Config) (*memsys.System, error) {
	g, err := memory.NewGeometry(c.LineBytes, c.PageBytes)
	if err != nil {
		return nil, err
	}
	var scratchBytes uint64
	for _, r := range c.Regions {
		if r.Scratch {
			scratchBytes += r.Size
		}
	}
	sys, err := memsys.New(memsys.Config{
		Geometry: g,
		Cache: cache.Config{
			LineBytes: c.LineBytes,
			NumSets:   c.NumSets,
			NumWays:   c.NumWays,
			Policy:    replacement.Kind(c.Policy),
			Write:     c.writePolicy(),
		},
		TLB:             vm.TLBConfig{Entries: c.TLBEntries, Ways: c.TLBWays},
		Timing:          c.timing(),
		ScratchpadBytes: scratchBytes,
	})
	if err != nil {
		return nil, err
	}
	if c.EnableL2 {
		l2cfg := cache.Config{
			LineBytes: c.LineBytes,
			NumSets:   c.L2Sets,
			NumWays:   c.L2Ways,
			Policy:    replacement.Kind(c.Policy),
		}
		if err := sys.EnableL2(l2cfg, c.L2HitCycles, c.L2Masked); err != nil {
			return nil, err
		}
	}
	sys.EnablePerTintStats()
	for i, ts := range c.Tints {
		id := sys.Tints().NewTint(fmt.Sprintf("tint%d", i+1))
		if id != tint.Tint(i+1) {
			return nil, fmt.Errorf("conform: tint id %d, want %d", id, i+1)
		}
		if err := sys.Tints().SetMask(id, replacement.Mask(ts.Mask)); err != nil {
			return nil, err
		}
	}
	for i, r := range c.Regions {
		reg := memory.Region{Name: fmt.Sprintf("r%d", i), Base: r.Base, Size: r.Size}
		switch {
		case r.Scratch:
			if err := sys.Scratchpad().Place(reg); err != nil {
				return nil, err
			}
		case r.Uncached:
			sys.PageTable().SetUncachedRange(reg.Base, reg.Size, true)
		default:
			if r.Tint != 0 {
				vm.Retint(sys.PageTable(), sys.TLB(), reg.Base, reg.Size, tint.Tint(r.Tint))
			}
		}
	}
	return sys, nil
}

// buildOracle assembles the reference machine for c, mirroring
// buildProduction operation for operation.
func buildOracle(c Config) (*oracle.System, error) {
	orc, err := oracle.NewSystem(oracle.SystemConfig{
		Cache: oracle.Config{
			LineBytes:    c.LineBytes,
			NumSets:      c.NumSets,
			NumWays:      c.NumWays,
			Policy:       c.Policy,
			WriteThrough: c.WriteThrough,
		},
		PageBytes:  c.PageBytes,
		TLBEntries: c.TLBEntries,
		TLBWays:    c.TLBWays,
		Timing:     c.oracleTiming(),
	})
	if err != nil {
		return nil, err
	}
	if c.EnableL2 {
		l2cfg := oracle.Config{
			LineBytes: c.LineBytes,
			NumSets:   c.L2Sets,
			NumWays:   c.L2Ways,
			Policy:    c.Policy,
		}
		if err := orc.EnableL2(l2cfg, c.L2HitCycles, c.L2Masked); err != nil {
			return nil, err
		}
	}
	for i, ts := range c.Tints {
		orc.DefineTint(uint16(i+1), ts.Mask)
	}
	for _, r := range c.Regions {
		switch {
		case r.Scratch:
			orc.PlaceScratch(r.Base, r.Size)
		case r.Uncached:
			orc.SetUncached(r.Base, r.Size)
		default:
			if r.Tint != 0 {
				orc.Retint(r.Base, r.Size, r.Tint)
			}
		}
	}
	return orc, nil
}

// WriteCase serializes c to path as indented JSON.
func WriteCase(path string, c Case) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadCase loads a case written by WriteCase.
func ReadCase(path string) (Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Case{}, err
	}
	var c Case
	if err := json.Unmarshal(data, &c); err != nil {
		return Case{}, fmt.Errorf("conform: parsing %s: %w", path, err)
	}
	return c, nil
}
