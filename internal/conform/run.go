package conform

import (
	"fmt"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/oracle"
	"colcache/internal/replacement"
	"colcache/internal/tint"
	"colcache/internal/vm"
)

// Divergence is the first disagreement between the production stack and the
// oracle (or a violated standing invariant) while running a case. A nil
// *Divergence means full agreement.
type Divergence struct {
	Case   string
	Step   int // index into the script; -1 for an end-of-run check
	Detail string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("conform: case %q diverged at step %d: %s", d.Case, d.Step, d.Detail)
}

// Options tune a run.
type Options struct {
	// ContentCheckEvery compares full cache contents, per-tint statistics
	// and the tint table every N access steps (always after non-access
	// steps and at the end). Zero means DefaultContentCheckEvery.
	ContentCheckEvery int
}

// DefaultContentCheckEvery is the content-comparison stride.
const DefaultContentCheckEvery = 64

// obsEvent is one AccessObserver callback captured from the production
// machine.
type obsEvent struct {
	id   tint.Tint
	addr memory.Addr
	miss bool
}

type recorder struct {
	events []obsEvent
}

func (r *recorder) ObserveAccess(id tint.Tint, addr memory.Addr, miss bool) {
	r.events = append(r.events, obsEvent{id: id, addr: addr, miss: miss})
}

// runState carries the driver-side ledger used for conservation checks.
type runState struct {
	wtNoAllocMisses  int64 // write-through write misses: no fill
	installFills     int64 // fills from install steps: no miss
	flushWritebacks  int64 // writebacks charged by flush steps
	expectedResident int64
	// Reused capture buffers for the production side of the per-step
	// content comparison (SnapshotSetsInto), so a long case's repeated
	// checks do not allocate per check.
	l1Buf [][]cache.LineState
	l2Buf [][]cache.LineState
}

// Run drives c through both machines and returns the first divergence, or
// nil if they agree step for step.
func Run(c Case, opts Options) *Divergence {
	every := opts.ContentCheckEvery
	if every <= 0 {
		every = DefaultContentCheckEvery
	}
	fail := func(step int, format string, args ...any) *Divergence {
		return &Divergence{Case: c.Name, Step: step, Detail: fmt.Sprintf(format, args...)}
	}

	sys, err := buildProduction(c.Config)
	if err != nil {
		return fail(-1, "building production machine: %v", err)
	}
	orc, err := buildOracle(c.Config)
	if err != nil {
		return fail(-1, "building oracle machine: %v", err)
	}
	rec := &recorder{}
	sys.SetAccessObserver(rec)

	var ledger runState
	accessSteps := 0
	for i, st := range c.Script {
		var d *Divergence
		switch st.Op {
		case "read", "write":
			d = stepAccess(c, i, st, sys, orc, rec, &ledger)
			accessSteps++
			if d == nil && accessSteps%every == 0 {
				d = checkState(c, i, sys, orc, &ledger)
			}
		case "setmask":
			errP := sys.RemapTint(tint.Tint(st.Tint), replacement.Mask(st.Mask))
			errO := orc.SetMask(st.Tint, st.Mask)
			if (errP == nil) != (errO == nil) {
				d = fail(i, "setmask(%d, %b): production err %v, oracle err %v", st.Tint, st.Mask, errP, errO)
			} else if d = checkState(c, i, sys, orc, &ledger); d != nil {
				// Paper §2.2: an instant remap must never corrupt resident
				// state; the full-content check right after the table write
				// is what enforces it.
				d.Detail = "after setmask: " + d.Detail
			}
		case "retint":
			nP := vm.Retint(sys.PageTable(), sys.TLB(), st.Base, st.Size, tint.Tint(st.Tint))
			nO := orc.Retint(st.Base, st.Size, st.Tint)
			if nP != nO {
				d = fail(i, "retint [%#x,+%d) → %d: production rewrote %d pages, oracle %d", st.Base, st.Size, st.Tint, nP, nO)
			} else if d = checkState(c, i, sys, orc, &ledger); d != nil {
				// The cumulative TLB flush counters compared inside
				// checkState verify both sides dropped the same number of
				// stale translations.
				d.Detail = "after retint: " + d.Detail
			}
		case "asid":
			sys.TLB().SetASID(st.ASID)
			orc.SetASID(st.ASID)
		case "flush":
			before := sys.Stats().Cache.Writebacks
			obefore := orc.Stats().Cache.Writebacks
			sys.FlushCache()
			orc.FlushCache()
			wbP := sys.Stats().Cache.Writebacks - before
			wbO := orc.Stats().Cache.Writebacks - obefore
			if wbP != wbO {
				d = fail(i, "flush: production wrote back %d dirty lines, oracle %d", wbP, wbO)
			} else {
				ledger.flushWritebacks += wbP
				ledger.expectedResident = 0
				if d = checkState(c, i, sys, orc, &ledger); d != nil {
					d.Detail = "after flush: " + d.Detail
				}
			}
		case "install":
			d = stepInstall(c, i, st, sys, orc, &ledger)
		default:
			d = fail(i, "unknown step op %q", st.Op)
		}
		if d != nil {
			return d
		}
	}
	return checkState(c, -1, sys, orc, &ledger)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// normalizedHas reports whether way is in mask after the production
// normalization (empty or out-of-range masks widen to all ways).
func normalizedHas(mask uint64, numWays, way int) bool {
	m := replacement.Mask(mask) & replacement.All(numWays)
	if m == 0 {
		m = replacement.All(numWays)
	}
	return m.Has(way)
}

func stepAccess(c Case, i int, st Step, sys *memsys.System, orc *oracle.System, rec *recorder, ledger *runState) *Divergence {
	fail := func(format string, args ...any) *Divergence {
		return &Divergence{Case: c.Name, Step: i, Detail: fmt.Sprintf(format, args...)}
	}
	write := st.Op == "write"
	op := memtrace.Read
	if write {
		op = memtrace.Write
	}

	before := sys.Stats()
	rec.events = rec.events[:0]
	cyc := sys.Access(memtrace.Access{Addr: st.Addr, Op: op, Think: st.Think})
	ores := orc.Access(st.Addr, write, st.Think)
	after := sys.Stats()

	if cyc != ores.Cycles {
		return fail("%s %#x: production took %d cycles, oracle %d", st.Op, st.Addr, cyc, ores.Cycles)
	}
	if got := after.Cycles - before.Cycles; got != cyc {
		return fail("%s %#x: Access returned %d cycles but counter advanced %d", st.Op, st.Addr, cyc, got)
	}
	if got, want := after.Instructions-before.Instructions, int64(st.Think)+1; got != want {
		return fail("%s %#x: instruction delta %d, want %d", st.Op, st.Addr, got, want)
	}
	if got := after.MemAccesses - before.MemAccesses; got != 1 {
		return fail("%s %#x: memory-access delta %d, want 1", st.Op, st.Addr, got)
	}
	if got, want := after.ScratchpadAccesses-before.ScratchpadAccesses, b2i(ores.Scratchpad); got != want {
		return fail("%s %#x: scratchpad delta %d, oracle says %d", st.Op, st.Addr, got, want)
	}
	if got, want := after.UncachedAccesses-before.UncachedAccesses, b2i(ores.Uncached); got != want {
		return fail("%s %#x: uncached delta %d, oracle says %d", st.Op, st.Addr, got, want)
	}

	// TLB: consulted for everything except scratchpad regions.
	dTLB := func(get func(s memsys.Stats) int64) int64 { return get(after) - get(before) }
	if got, want := dTLB(func(s memsys.Stats) int64 { return s.TLB.Accesses }), b2i(!ores.Scratchpad); got != want {
		return fail("%s %#x: TLB access delta %d, want %d", st.Op, st.Addr, got, want)
	}
	if got, want := dTLB(func(s memsys.Stats) int64 { return s.TLB.Hits }), b2i(!ores.Scratchpad && ores.TLBHit); got != want {
		return fail("%s %#x: TLB hit delta %d, oracle TLB hit=%v", st.Op, st.Addr, got, ores.TLBHit)
	}

	// Cache event deltas, field by field.
	type ev struct {
		name string
		got  int64
		want int64
	}
	evs := []ev{
		{"accesses", after.Cache.Accesses - before.Cache.Accesses, b2i(ores.Cached)},
		{"hits", after.Cache.Hits - before.Cache.Hits, b2i(ores.Cached && ores.Cache.Hit)},
		{"misses", after.Cache.Misses - before.Cache.Misses, b2i(ores.Cached && !ores.Cache.Hit)},
		{"evictions", after.Cache.Evictions - before.Cache.Evictions, b2i(ores.Cache.Evicted)},
		{"writebacks", after.Cache.Writebacks - before.Cache.Writebacks, b2i(ores.Cache.Writeback)},
		{"fills", after.Cache.Fills - before.Cache.Fills, b2i(ores.Cache.Filled)},
	}
	for _, e := range evs {
		if e.got != e.want {
			return fail("%s %#x: cache %s delta %d, oracle says %d (oracle result %+v)",
				st.Op, st.Addr, e.name, e.got, e.want, ores.Cache)
		}
	}

	// Observer: exactly one tint-attributed event per cached access.
	if ores.Cached {
		if len(rec.events) != 1 {
			return fail("%s %#x: %d observer events for one cached access", st.Op, st.Addr, len(rec.events))
		}
		e := rec.events[0]
		if uint16(e.id) != ores.Tint || e.addr != st.Addr || e.miss != !ores.Cache.Hit {
			return fail("%s %#x: observer saw tint=%d addr=%#x miss=%v, oracle tint=%d miss=%v",
				st.Op, st.Addr, e.id, e.addr, e.miss, ores.Tint, !ores.Cache.Hit)
		}
	} else if len(rec.events) != 0 {
		return fail("%s %#x: %d observer events for a bypassing access", st.Op, st.Addr, len(rec.events))
	}

	// Way agreement and the paper's central invariant: the victim of a fill
	// is always inside the requesting tint's column vector.
	if ores.Cached && (ores.Cache.Hit || ores.Cache.Filled) {
		pw := sys.Cache().WayOf(st.Addr)
		if pw != ores.Cache.Way {
			return fail("%s %#x: resides in production way %d, oracle way %d", st.Op, st.Addr, pw, ores.Cache.Way)
		}
		if ores.Cache.Filled && !normalizedHas(ores.Mask, c.Config.NumWays, pw) {
			return fail("%s %#x: filled way %d outside tint %d's column vector %b",
				st.Op, st.Addr, pw, ores.Tint, ores.Mask)
		}
	}

	// Ledger bookkeeping for the conservation checks.
	if ores.Cached && !ores.Cache.Hit && !ores.Cache.Filled {
		ledger.wtNoAllocMisses++
	}
	ledger.expectedResident += b2i(ores.Cache.Filled) - b2i(ores.Cache.Evicted)
	return nil
}

func stepInstall(c Case, i int, st Step, sys *memsys.System, orc *oracle.System, ledger *runState) *Divergence {
	fail := func(format string, args ...any) *Divergence {
		return &Divergence{Case: c.Name, Step: i, Detail: fmt.Sprintf(format, args...)}
	}
	// The mask an install runs under is the page's tint mask; both sides
	// receive the identical vector, resolved once through the page table.
	_, mask := orc.ResolveMask(st.Addr)
	before := sys.Stats()
	res := sys.InstallLine(st.Addr, replacement.Mask(mask))
	ores := orc.Install(st.Addr, mask)
	after := sys.Stats()

	if res.Hit != ores.Hit || res.Filled != ores.Filled || res.Evicted != ores.Evicted || res.Writeback != ores.Writeback {
		return fail("install %#x: production %+v, oracle %+v", st.Addr, res, ores)
	}
	if ores.Filled && res.Way != ores.Way {
		return fail("install %#x: production way %d, oracle way %d", st.Addr, res.Way, ores.Way)
	}
	if got := after.Cache.Accesses - before.Cache.Accesses; got != 0 {
		return fail("install %#x: counted %d demand accesses", st.Addr, got)
	}
	if got, want := after.Cache.Fills-before.Cache.Fills, b2i(ores.Filled); got != want {
		return fail("install %#x: fill delta %d, want %d", st.Addr, got, want)
	}
	if got := after.TLB.Accesses - before.TLB.Accesses; got != 0 {
		return fail("install %#x: touched the TLB (%d accesses)", st.Addr, got)
	}
	if ores.Filled && !normalizedHas(mask, c.Config.NumWays, ores.Way) {
		return fail("install %#x: filled way %d outside column vector %b", st.Addr, ores.Way, mask)
	}
	if ores.Filled {
		ledger.installFills++
	}
	ledger.expectedResident += b2i(ores.Filled) - b2i(ores.Evicted)
	return nil
}

// checkState compares full cache contents, per-tint statistics, the tint
// table, TLB counters, page-table write counts, and the stats conservation
// ledger.
func checkState(c Case, step int, sys *memsys.System, orc *oracle.System, ledger *runState) *Divergence {
	fail := func(format string, args ...any) *Divergence {
		return &Divergence{Case: c.Name, Step: step, Detail: fmt.Sprintf(format, args...)}
	}
	// The production side is captured in one bulk, buffer-reusing pass; the
	// oracle keeps its per-line walk — bulk capture on both sides would let
	// a shared indexing bug cancel itself out.
	oc := orc.Cache()
	ledger.l1Buf = sys.Cache().SnapshotSetsInto(ledger.l1Buf)
	for set := 0; set < c.Config.NumSets; set++ {
		for way := 0; way < c.Config.NumWays; way++ {
			p := ledger.l1Buf[set][way]
			o := oc.LineAt(set, way)
			if p.Valid != o.Valid || (p.Valid && (p.Tag != o.Tag || p.Dirty != o.Dirty)) {
				return fail("set %d way %d: production {tag=%#x valid=%v dirty=%v}, oracle {tag=%#x valid=%v dirty=%v}",
					set, way, p.Tag, p.Valid, p.Dirty, o.Tag, o.Valid, o.Dirty)
			}
		}
	}

	// L2 contents, line by line, when a second level is attached.
	if c.Config.EnableL2 {
		ol2 := orc.L2()
		ledger.l2Buf = sys.L2Cache().SnapshotSetsInto(ledger.l2Buf)
		for set := 0; set < c.Config.L2Sets; set++ {
			for way := 0; way < c.Config.L2Ways; way++ {
				p := ledger.l2Buf[set][way]
				o := ol2.LineAt(set, way)
				if p.Valid != o.Valid || (p.Valid && (p.Tag != o.Tag || p.Dirty != o.Dirty)) {
					return fail("L2 set %d way %d: production {tag=%#x valid=%v dirty=%v}, oracle {tag=%#x valid=%v dirty=%v}",
						set, way, p.Tag, p.Valid, p.Dirty, o.Tag, o.Valid, o.Dirty)
				}
			}
		}
	}

	ps := sys.Stats()
	os := orc.Stats()
	type cmp struct {
		name string
		p, o int64
	}
	cmps := []cmp{
		{"cycles", ps.Cycles, os.Cycles},
		{"instructions", ps.Instructions, os.Instructions},
		{"memaccesses", ps.MemAccesses, os.MemAccesses},
		{"scratchpad", ps.ScratchpadAccesses, os.ScratchpadAccesses},
		{"uncached", ps.UncachedAccesses, os.UncachedAccesses},
		{"cache.accesses", ps.Cache.Accesses, os.Cache.Accesses},
		{"cache.hits", ps.Cache.Hits, os.Cache.Hits},
		{"cache.misses", ps.Cache.Misses, os.Cache.Misses},
		{"cache.evictions", ps.Cache.Evictions, os.Cache.Evictions},
		{"cache.writebacks", ps.Cache.Writebacks, os.Cache.Writebacks},
		{"cache.fills", ps.Cache.Fills, os.Cache.Fills},
		{"tlb.accesses", ps.TLB.Accesses, os.TLB.Accesses},
		{"tlb.hits", ps.TLB.Hits, os.TLB.Hits},
		{"tlb.misses", ps.TLB.Misses, os.TLB.Misses},
		{"tlb.flushes", ps.TLB.Flushes, os.TLB.Flushes},
		{"pagetable.writes", sys.PageTable().Writes(), orc.PageWrites()},
	}
	if c.Config.EnableL2 {
		ol2 := orc.L2().Stats()
		cmps = append(cmps,
			cmp{"l2.accesses", ps.L2.Accesses, ol2.Accesses},
			cmp{"l2.hits", ps.L2.Hits, ol2.Hits},
			cmp{"l2.misses", ps.L2.Misses, ol2.Misses},
			cmp{"l2.evictions", ps.L2.Evictions, ol2.Evictions},
			cmp{"l2.writebacks", ps.L2.Writebacks, ol2.Writebacks},
			cmp{"l2.fills", ps.L2.Fills, ol2.Fills},
		)
	}
	for _, x := range cmps {
		if x.p != x.o {
			return fail("%s: production %d, oracle %d", x.name, x.p, x.o)
		}
	}

	// Tint table agreement.
	snap := sys.Tints().Snapshot()
	omasks := orc.Masks()
	if len(snap) != len(omasks) {
		return fail("tint table has %d entries, oracle %d", len(snap), len(omasks))
	}
	for id, m := range snap {
		if om, ok := omasks[uint16(id)]; !ok || uint64(m) != om {
			return fail("tint %d: production mask %b, oracle %b (known=%v)", id, m, om, ok)
		}
	}

	// Per-tint attribution agreement.
	pts := sys.TintStats()
	ots := orc.TintStats()
	for id, st := range pts {
		o := ots[uint16(id)]
		if st.Accesses != o.Accesses || st.Misses != o.Misses {
			return fail("tint %d stats: production %d/%d acc/miss, oracle %d/%d",
				id, st.Accesses, st.Misses, o.Accesses, o.Misses)
		}
	}
	for id := range ots {
		if _, ok := pts[tint.Tint(id)]; !ok && (ots[id].Accesses != 0 || ots[id].Misses != 0) {
			return fail("tint %d has oracle stats %+v but no production entry", id, ots[id])
		}
	}

	// Conservation ledger (paper-mandated: fills = misses, evictions ≤
	// fills — stated here with the write-through and install corrections).
	if got, want := ps.Cache.Fills, ps.Cache.Misses-ledger.wtNoAllocMisses+ledger.installFills; got != want {
		return fail("ledger: fills=%d but misses-wtNoAlloc+installs=%d", got, want)
	}
	if ps.Cache.Evictions > ps.Cache.Fills {
		return fail("ledger: evictions=%d exceed fills=%d", ps.Cache.Evictions, ps.Cache.Fills)
	}
	if ps.Cache.Writebacks > ps.Cache.Evictions+ledger.flushWritebacks {
		return fail("ledger: writebacks=%d exceed evictions=%d plus flush writebacks=%d",
			ps.Cache.Writebacks, ps.Cache.Evictions, ledger.flushWritebacks)
	}
	if got := int64(sys.Cache().ResidentLines()); got != ledger.expectedResident {
		return fail("ledger: %d resident lines, fills-evictions says %d", got, ledger.expectedResident)
	}
	if got := int64(oc.ResidentLines()); got != ledger.expectedResident {
		return fail("ledger: oracle has %d resident lines, fills-evictions says %d", got, ledger.expectedResident)
	}

	// L2 conservation: the write-back L2 allocates on every miss and is
	// never flushed or installed into, so fills = misses exactly.
	if c.Config.EnableL2 {
		if ps.L2.Fills != ps.L2.Misses {
			return fail("L2 ledger: fills=%d but misses=%d", ps.L2.Fills, ps.L2.Misses)
		}
		if ps.L2.Evictions > ps.L2.Fills {
			return fail("L2 ledger: evictions=%d exceed fills=%d", ps.L2.Evictions, ps.L2.Fills)
		}
	}
	return nil
}

// CacheStep is one operation of the cache-level differential driver, which
// exercises the paths memsys never issues (explicit invalidates, fills of
// resident lines) and is the seam mutation checks inject bugs through.
type CacheStep struct {
	// Op is "read", "write", "fill", "invalidate" or "flush".
	Op   string
	Addr uint64
	Mask uint64
}

// CompareCaches drives prod and ref in lockstep over steps, comparing every
// result field (including victim way and evicted tag) and the full cache
// contents every checkEvery steps and at the end. name labels divergences.
func CompareCaches(name string, prod *cache.Cache, ref *oracle.Cache, steps []CacheStep, checkEvery int) *Divergence {
	if checkEvery <= 0 {
		checkEvery = DefaultContentCheckEvery
	}
	fail := func(step int, format string, args ...any) *Divergence {
		return &Divergence{Case: name, Step: step, Detail: fmt.Sprintf(format, args...)}
	}
	cfg := prod.Config()
	content := func(step int) *Divergence {
		for set := 0; set < cfg.NumSets; set++ {
			for way := 0; way < cfg.NumWays; way++ {
				p := prod.LineAt(set, way)
				o := ref.LineAt(set, way)
				if p.Valid != o.Valid || (p.Valid && (p.Tag != o.Tag || p.Dirty != o.Dirty)) {
					return fail(step, "set %d way %d: production {tag=%#x valid=%v dirty=%v}, oracle {tag=%#x valid=%v dirty=%v}",
						set, way, p.Tag, p.Valid, p.Dirty, o.Tag, o.Valid, o.Dirty)
				}
			}
		}
		pst, ost := prod.Stats(), ref.Stats()
		if pst.Accesses != ost.Accesses || pst.Hits != ost.Hits || pst.Misses != ost.Misses ||
			pst.Evictions != ost.Evictions || pst.Writebacks != ost.Writebacks || pst.Fills != ost.Fills {
			return fail(step, "stats: production %+v, oracle %+v", pst, ost)
		}
		return nil
	}

	for i, st := range steps {
		var pres cache.Result
		var ores oracle.Result
		switch st.Op {
		case "read":
			pres = prod.Read(st.Addr, replacement.Mask(st.Mask))
			ores = ref.Access(st.Addr, false, st.Mask)
		case "write":
			pres = prod.Write(st.Addr, replacement.Mask(st.Mask))
			ores = ref.Access(st.Addr, true, st.Mask)
		case "fill":
			pres = prod.Fill(st.Addr, replacement.Mask(st.Mask))
			ores = ref.Fill(st.Addr, st.Mask)
		case "invalidate":
			dp := prod.Invalidate(st.Addr)
			do := ref.Invalidate(st.Addr)
			if dp != do {
				return fail(i, "invalidate %#x: production dropped=%v, oracle dropped=%v", st.Addr, dp, do)
			}
			continue
		case "flush":
			prod.FlushAll()
			ref.FlushAll()
			if d := content(i); d != nil {
				return d
			}
			continue
		default:
			return fail(i, "unknown cache step op %q", st.Op)
		}
		if pres.Hit != ores.Hit || pres.Way != ores.Way || pres.Filled != ores.Filled ||
			pres.Evicted != ores.Evicted || pres.Writeback != ores.Writeback ||
			(pres.Evicted && pres.EvictedTag != ores.EvictedTag) {
			return fail(i, "%s %#x mask=%b: production %+v, oracle %+v", st.Op, st.Addr, st.Mask, pres, ores)
		}
		if pres.Filled && !normalizedHas(st.Mask, cfg.NumWays, pres.Way) {
			return fail(i, "%s %#x: victim way %d outside mask %b", st.Op, st.Addr, pres.Way, st.Mask)
		}
		if (i+1)%checkEvery == 0 {
			if d := content(i); d != nil {
				return d
			}
		}
	}
	return content(len(steps) - 1)
}
