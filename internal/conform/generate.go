package conform

import (
	"fmt"
	"math/rand"
)

// Seeded random case generation: one int64 seed fully determines a machine
// configuration and a script, so CI can re-run the exact combination that
// failed and the minimizer can shrink it. The axes swept — geometry, policy,
// write mode, TLB shape, tint-table layout, and remap timing — are the ones
// the paper's correctness argument quantifies over.

// maskPattern draws a column bit vector for a cache with numWays ways.
// Patterns deliberately include the degenerate shapes the satellite tests
// foreground: a single column, a contiguous partition, and dense random
// vectors. The result is never zero.
func maskPattern(r *rand.Rand, numWays int) uint64 {
	all := uint64(1)<<uint(numWays) - 1
	switch r.Intn(4) {
	case 0: // single column
		return 1 << uint(r.Intn(numWays))
	case 1: // contiguous range
		lo := r.Intn(numWays)
		hi := lo + 1 + r.Intn(numWays-lo)
		var m uint64
		for w := lo; w < hi; w++ {
			m |= 1 << uint(w)
		}
		return m
	case 2: // random nonzero
		for {
			if m := r.Uint64() & all; m != 0 {
				return m
			}
		}
	default: // every column — the plain set-associative degenerate case
		return all
	}
}

// narrowMask clears one permitted column, if more than one remains.
func narrowMask(r *rand.Rand, mask uint64, numWays int) uint64 {
	var set []int
	for w := 0; w < numWays; w++ {
		if mask&(1<<uint(w)) != 0 {
			set = append(set, w)
		}
	}
	if len(set) <= 1 {
		return mask
	}
	return mask &^ (1 << uint(set[r.Intn(len(set))]))
}

// NewCase derives a full configuration and script from seed.
func NewCase(seed int64) Case {
	r := rand.New(rand.NewSource(seed))

	lineBytes := []int{16, 32, 64}[r.Intn(3)]
	numSets := []int{4, 8, 16, 32, 64}[r.Intn(5)]
	numWays := []int{1, 2, 4, 8}[r.Intn(4)]
	pageBytes := []int{256, 512, 1024, 4096}[r.Intn(4)]
	policy := []string{"lru", "plru", "fifo", "random"}[r.Intn(4)]
	tlbEntries := []int{8, 16, 32, 64}[r.Intn(4)]
	tlbWays := []int{1, 2, 4, tlbEntries}[r.Intn(4)]
	if tlbWays > tlbEntries {
		tlbWays = tlbEntries
	}

	cfg := Config{
		LineBytes:              lineBytes,
		NumSets:                numSets,
		NumWays:                numWays,
		PageBytes:              pageBytes,
		Policy:                 policy,
		WriteThrough:           r.Intn(4) == 0,
		TLBEntries:             tlbEntries,
		TLBWays:                tlbWays,
		TLBMissCycles:          r.Intn(9),
		WriteThroughStoreCycle: r.Intn(4),
	}

	// Second level: one in three machines deepens the hierarchy, and half
	// of those apply the tint's column vector at the L2 too (the masked
	// mode the paper's "hierarchy-depth-agnostic" reading of §2.2 allows).
	if r.Intn(3) == 0 {
		cfg.EnableL2 = true
		cfg.L2Sets = numSets * []int{2, 4}[r.Intn(2)]
		cfg.L2Ways = numWays * []int{1, 2}[r.Intn(2)]
		cfg.L2HitCycles = 1 + r.Intn(6)
		cfg.L2Masked = r.Intn(2) == 0
	}

	// Tints with random column vectors.
	numTints := 1 + r.Intn(3)
	for t := 0; t < numTints; t++ {
		cfg.Tints = append(cfg.Tints, TintSpec{Mask: maskPattern(r, numWays)})
	}

	// Regions: one per tint, plus occasionally an uncached range and a
	// scratchpad range, laid out back to back on page boundaries.
	next := uint64(pageBytes) // leave page 0 untinted
	alloc := func(pages int) (base, size uint64) {
		base = next
		size = uint64(pages * pageBytes)
		next += size
		return base, size
	}
	for t := 0; t < numTints; t++ {
		base, size := alloc(1 + r.Intn(4))
		cfg.Regions = append(cfg.Regions, RegionSpec{Base: base, Size: size, Tint: uint16(t + 1)})
	}
	if r.Intn(8) == 0 {
		base, size := alloc(1 + r.Intn(2))
		cfg.Regions = append(cfg.Regions, RegionSpec{Base: base, Size: size, Uncached: true})
	}
	if r.Intn(4) == 0 {
		base, size := alloc(1 + r.Intn(2))
		cfg.Regions = append(cfg.Regions, RegionSpec{Base: base, Size: size, Scratch: true})
	}
	span := next

	// Script: a locality-biased access stream with software operations
	// injected at a per-case cadence. remapEvery == 0 means a static
	// partition for the whole run.
	n := 400 + r.Intn(800)
	remapEvery := 0
	if r.Intn(4) != 0 {
		remapEvery = 40 + r.Intn(160)
	}

	// Each region gets a hot window about two columns wide so replacement
	// decisions actually contend.
	hotLines := 2 * numSets
	pickAddr := func() uint64 {
		if r.Intn(10) == 0 {
			return uint64(r.Int63n(int64(span))) // anywhere, incl. page 0
		}
		reg := cfg.Regions[r.Intn(len(cfg.Regions))]
		window := uint64(hotLines * lineBytes)
		if window > reg.Size {
			window = reg.Size
		}
		return reg.Base + uint64(r.Int63n(int64(window)))
	}

	var script []Step
	asid := uint16(0)
	for i := 0; i < n; i++ {
		if remapEvery > 0 && i > 0 && i%remapEvery == 0 {
			switch p := r.Intn(20); {
			case p < 12: // remap a tint's columns
				id := uint16(r.Intn(numTints + 1)) // 0 remaps the default tint
				var mask uint64
				if r.Intn(2) == 0 && id > 0 {
					mask = narrowMask(r, cfg.Tints[id-1].Mask, numWays)
				} else {
					mask = maskPattern(r, numWays)
				}
				script = append(script, Step{Op: "setmask", Tint: id, Mask: mask})
			case p < 15: // re-tint a region's pages
				reg := cfg.Regions[r.Intn(len(cfg.Regions))]
				if !reg.Scratch && !reg.Uncached {
					script = append(script, Step{
						Op: "retint", Base: reg.Base, Size: reg.Size,
						Tint: uint16(r.Intn(numTints + 1)),
					})
				}
			case p < 17: // context switch
				asid ^= 1
				script = append(script, Step{Op: "asid", ASID: asid})
			case p < 18: // whole-cache flush
				script = append(script, Step{Op: "flush"})
			default: // prefetch-style install
				script = append(script, Step{Op: "install", Addr: pickAddr()})
			}
		}
		op := "read"
		if r.Intn(10) < 3 {
			op = "write"
		}
		script = append(script, Step{Op: op, Addr: pickAddr(), Think: uint32(r.Intn(4))})
	}

	name := fmt.Sprintf("seed-%d-%s-%dx%dx%d", seed, policy, numSets, numWays, lineBytes)
	if cfg.EnableL2 {
		name += "-l2"
		if cfg.L2Masked {
			name += "m"
		}
	}
	return Case{
		Name:   name,
		Seed:   seed,
		Config: cfg,
		Script: script,
	}
}

// NewCacheSteps derives a cache-level differential script from seed for a
// cache with the given geometry: demand reads/writes, prefetch fills,
// invalidates and flushes under a palette of partition masks plus
// occasional one-off vectors, confined to a working set that keeps sets
// contended.
func NewCacheSteps(seed int64, lineBytes, numSets, numWays int) []CacheStep {
	r := rand.New(rand.NewSource(seed))
	all := uint64(1)<<uint(numWays) - 1
	palette := []uint64{all, maskPattern(r, numWays), maskPattern(r, numWays)}
	span := uint64(4 * numSets * numWays * lineBytes)

	n := 300 + r.Intn(500)
	steps := make([]CacheStep, 0, n)
	for i := 0; i < n; i++ {
		mask := palette[r.Intn(len(palette))]
		if r.Intn(16) == 0 {
			mask = maskPattern(r, numWays)
		}
		addr := uint64(r.Int63n(int64(span)))
		switch p := r.Intn(20); {
		case p < 10:
			steps = append(steps, CacheStep{Op: "read", Addr: addr, Mask: mask})
		case p < 16:
			steps = append(steps, CacheStep{Op: "write", Addr: addr, Mask: mask})
		case p < 18:
			steps = append(steps, CacheStep{Op: "fill", Addr: addr, Mask: mask})
		case p < 19:
			steps = append(steps, CacheStep{Op: "invalidate", Addr: addr})
		default:
			steps = append(steps, CacheStep{Op: "flush"})
		}
	}
	return steps
}
