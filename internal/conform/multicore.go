package conform

import (
	"fmt"
	"math/rand"
	"reflect"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/multicore"
	"colcache/internal/replacement"
)

// Multicore serial-equivalence conformance: the epoch-parallel stepper
// (multicore.RunParallel) claims bit-identical results to the serial stepper
// for ANY epoch length. Each MCCase draws a machine — core count, cache
// geometries, policies, epoch length, L2 partitioning, a deterministic
// mid-run remap schedule, contended and private traffic — from a seed, runs
// it through both steppers, and compares everything observable: every
// counter of every core, bus and L2 statistics, the writeback ledger, the
// complete L1 and L2 contents, and the final L2 column masks. Checks is
// itself a seeded axis: with checks on every hit becomes a barrier-merged
// note record and coherence invariants are verified live throughout, while
// checks off — the mode every benchmark and production run uses — takes the
// structurally different path where local hits are folded into record
// prefixes and unkeyed tails; both halves of the sweep end with the same
// structural invariant walk and full-state comparison.

// MCCase is one seeded serial-vs-parallel equivalence case.
type MCCase struct {
	Name      string
	Seed      int64
	Cfg       multicore.Config
	Epoch     int64              // epoch length for the parallel run
	Partition []replacement.Mask // initial per-core L2 masks (nil: unpartitioned)
	Remap     []multicore.RemapEvent
}

// mcSynthTrace builds a deterministic locality-biased read/write stream over
// [lo, hi) — the same shape the multicore invariant sweep uses.
func mcSynthTrace(rng *rand.Rand, n int, lo, hi uint64) memtrace.Trace {
	tr := make(memtrace.Trace, 0, n)
	addr := lo
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			addr = lo + uint64(rng.Int63n(int64(hi-lo)))
		case 1:
			addr += 8
			if addr >= hi {
				addr = lo
			}
		default:
			addr = lo + (addr-lo+uint64(rng.Intn(64)))%(hi-lo)
		}
		op := memtrace.Read
		if rng.Intn(3) == 0 {
			op = memtrace.Write
		}
		tr = append(tr, memtrace.Access{Addr: addr, Op: op, Think: uint32(rng.Intn(3))})
	}
	return tr
}

// mcEpochs is the epoch-length axis: K=1 must degenerate to the serial
// stepper one access at a time; the large values exercise long lookaheads
// with many buffered records and mid-merge direct execution.
var mcEpochs = []int64{1, 3, 7, 64, 512, 4096}

// NewMCCase derives a multicore equivalence case from a seed.
func NewMCCase(seed int64) MCCase {
	rng := rand.New(rand.NewSource(seed ^ 0x6d63))
	cores := 2 + rng.Intn(3)
	lineBytes := 16 << rng.Intn(2)
	l1Sets := 4 << rng.Intn(2)
	l1Ways := 1 << rng.Intn(3)
	l2Sets := l1Sets * 2
	l2Ways := 2 << rng.Intn(2)
	policies := []replacement.Kind{replacement.LRU, replacement.TreePLRU, replacement.FIFO, replacement.Random}

	// Contended shared window interleaved with per-core private windows, so
	// every bus transaction class appears and epochs both conflict and merge.
	sharedHi := uint64(512 + rng.Intn(1024))
	var traces []memtrace.Trace
	for c := 0; c < cores; c++ {
		n := 128 + rng.Intn(128)
		privLo := 0x10000 * uint64(c+1)
		shared := mcSynthTrace(rng, n, 0, sharedHi)
		private := mcSynthTrace(rng, n, privLo, privLo+0x800)
		mixed := make(memtrace.Trace, 0, 2*n)
		for i := 0; i < n; i++ {
			mixed = append(mixed, shared[i], private[i])
		}
		traces = append(traces, mixed)
	}

	mc := MCCase{
		Name: fmt.Sprintf("mc-%d", seed),
		Seed: seed,
		Cfg: multicore.Config{
			Geometry: memory.MustGeometry(lineBytes, 1024),
			L1: cache.Config{
				LineBytes: lineBytes, NumSets: l1Sets, NumWays: l1Ways,
				Policy: policies[rng.Intn(len(policies))],
			},
			L2: cache.Config{
				LineBytes: lineBytes, NumSets: l2Sets, NumWays: l2Ways,
				Policy: policies[rng.Intn(len(policies))],
			},
			Timing:      memsys.DefaultTiming,
			L2HitCycles: 1 + rng.Intn(6),
			Traces:      traces,
			// Half the sweep runs checks off: per-hit note records (checks
			// on) and folded local-hit tails (checks off) are different merge
			// paths, and the latter is the one benchmarks and colserved use.
			Checks: rng.Intn(2) == 0,
		},
		Epoch: mcEpochs[rng.Intn(len(mcEpochs))],
	}

	// Half the cases partition the shared L2 per core; a third of those also
	// install a deterministic mid-run remap schedule (the paper's cheap
	// repartition, fired at exact global L2-access sequence points).
	if rng.Intn(2) == 0 && l2Ways >= cores {
		per := l2Ways / cores
		for c := 0; c < cores; c++ {
			hi := (c + 1) * per
			if c == cores-1 {
				hi = l2Ways
			}
			mc.Partition = append(mc.Partition, replacement.Range(c*per, hi))
		}
		if rng.Intn(3) == 0 {
			at := int64(20 + rng.Intn(200))
			for c := 0; c < cores; c++ {
				var rotated replacement.Mask
				for _, w := range mc.Partition[c].Ways(l2Ways) {
					rotated |= replacement.Of((w + 1) % l2Ways)
				}
				mc.Remap = append(mc.Remap, multicore.RemapEvent{
					AfterL2Accesses: at, Core: c, Mask: rotated,
				})
			}
		}
	}
	return mc
}

func mcBuild(c MCCase) (*multicore.Machine, error) {
	m, err := multicore.New(c.Cfg)
	if err != nil {
		return nil, err
	}
	for i, mask := range c.Partition {
		if err := m.SetL2Mask(i, mask); err != nil {
			return nil, err
		}
	}
	if c.Remap != nil {
		if err := m.SetRemapSchedule(c.Remap); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func mcDumpLines(ch *cache.Cache) []cache.LineState {
	cfg := ch.Config()
	out := make([]cache.LineState, 0, cfg.NumSets*cfg.NumWays)
	for s := 0; s < cfg.NumSets; s++ {
		for w := 0; w < cfg.NumWays; w++ {
			out = append(out, ch.LineAt(s, w))
		}
	}
	return out
}

// RunMCCase runs one case through both steppers and returns the first
// observable divergence, or nil if the machines are identical.
func RunMCCase(c MCCase) *Divergence {
	fail := func(format string, args ...any) *Divergence {
		return &Divergence{Case: c.Name, Step: -1, Detail: fmt.Sprintf(format, args...)}
	}
	serial, err := mcBuild(c)
	if err != nil {
		return fail("building serial machine: %v", err)
	}
	parallel, err := mcBuild(c)
	if err != nil {
		return fail("building parallel machine: %v", err)
	}
	if err := serial.Run(); err != nil {
		return fail("serial stepper: coherence violation: %v", err)
	}
	if err := parallel.RunParallel(c.Epoch); err != nil {
		return fail("epoch stepper (K=%d): coherence violation: %v", c.Epoch, err)
	}
	if err := serial.CheckInvariants(); err != nil {
		return fail("serial final invariants: %v", err)
	}
	if err := parallel.CheckInvariants(); err != nil {
		return fail("parallel final invariants (K=%d): %v", c.Epoch, err)
	}

	ss, sp := serial.Stats(), parallel.Stats()
	if !reflect.DeepEqual(ss, sp) {
		for i := range ss.Cores {
			if !reflect.DeepEqual(ss.Cores[i], sp.Cores[i]) {
				return fail("K=%d: core %d stats diverge:\nserial:   %+v\nparallel: %+v",
					c.Epoch, i, ss.Cores[i], sp.Cores[i])
			}
		}
		return fail("K=%d: machine stats diverge:\nserial:   bus=%+v l2=%+v ledger=%d/%d\nparallel: bus=%+v l2=%+v ledger=%d/%d",
			c.Epoch, ss.Bus, ss.L2, ss.DirtyCreated, ss.DirtyRetired,
			sp.Bus, sp.L2, sp.DirtyCreated, sp.DirtyRetired)
	}
	for i := 0; i < serial.NumCores(); i++ {
		if !reflect.DeepEqual(mcDumpLines(serial.L1(i)), mcDumpLines(parallel.L1(i))) {
			return fail("K=%d: core %d L1 contents diverge", c.Epoch, i)
		}
		if ms, mp := serial.L2Mask(i), parallel.L2Mask(i); ms != mp {
			return fail("K=%d: core %d L2 mask diverges: %s vs %s", c.Epoch, i, ms, mp)
		}
	}
	if !reflect.DeepEqual(mcDumpLines(serial.L2()), mcDumpLines(parallel.L2())) {
		return fail("K=%d: L2 contents diverge", c.Epoch)
	}

	// The sweep must exercise real machines: a case with no bus or L2
	// traffic wouldn't witness the equivalence it claims to.
	if ss.Bus.Reads == 0 || ss.L2.Accesses == 0 {
		return fail("degenerate case: no bus/L2 traffic")
	}
	return nil
}
