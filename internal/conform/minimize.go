package conform

// Trace minimization: a failing random case has hundreds of steps, most of
// them irrelevant. Minimize shrinks the script while preserving the
// failure, so the committed repro is small enough to read. The algorithm is
// the usual two-phase reduction: truncate to the failing step, then
// greedily delete chunks (halving the chunk size down to single steps) as
// long as the case still fails.

// MinimizeBudget bounds how many harness runs a minimization may spend.
const MinimizeBudget = 2000

// Minimize returns a smaller case that still fails, or c unchanged if it
// passes. The result's divergence is returned alongside it.
func Minimize(c Case, opts Options) (Case, *Divergence) {
	div := Run(c, opts)
	if div == nil {
		return c, nil
	}
	runs := 0
	stillFails := func(script []Step) *Divergence {
		if runs >= MinimizeBudget {
			return nil
		}
		runs++
		trial := c
		trial.Script = script
		return Run(trial, opts)
	}

	// Phase 1: everything after the failing step is noise. (Step -1 means
	// the end-of-run check failed, so the whole script is load-bearing.)
	script := c.Script
	if div.Step >= 0 && div.Step+1 < len(script) {
		if d := stillFails(script[:div.Step+1]); d != nil {
			script, div = script[:div.Step+1], d
		}
	}

	// Phase 2: chunked deletion, ddmin-style.
	for chunk := len(script) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < len(script); {
			end := start + chunk
			if end > len(script) {
				end = len(script)
			}
			trial := make([]Step, 0, len(script)-(end-start))
			trial = append(trial, script[:start]...)
			trial = append(trial, script[end:]...)
			if d := stillFails(trial); d != nil {
				script, div = trial, d
				// Do not advance: the next chunk slid into this position.
			} else {
				start = end
			}
		}
	}

	out := c
	out.Script = script
	out.Name = c.Name + "-min"
	div.Case = out.Name
	return out, div
}
