package conform

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"colcache/internal/memtrace"
)

// Golden traces: small committed workload traces (text CCTRACE format)
// that every conformance run replays through the full policy × write-mode
// matrix. They pin down real access patterns — strided kernels, hash
// tables, zig-zag block walks — that the random generator only samples.

// GoldenConfigs returns the configuration matrix golden traces run under:
// every replacement policy crossed with both write modes and with/without a
// masked second level, on a fixed two-tint partition whose regions are
// derived from the trace's own span.
func GoldenConfigs(tr memtrace.Trace) []Config {
	lo, hi := traceSpan(tr)
	const pageBytes = 1024
	base := lo &^ uint64(pageBytes-1)
	end := (hi + pageBytes) &^ uint64(pageBytes-1)
	mid := (base + (end-base)/2) &^ uint64(pageBytes-1)
	if mid <= base {
		mid = base + pageBytes
	}
	if mid >= end {
		end = mid + pageBytes
	}

	var out []Config
	for _, policy := range []string{"lru", "plru", "fifo", "random"} {
		for _, wt := range []bool{false, true} {
			for _, l2 := range []bool{false, true} {
				cfg := Config{
					LineBytes:              32,
					NumSets:                32,
					NumWays:                4,
					PageBytes:              pageBytes,
					Policy:                 policy,
					WriteThrough:           wt,
					TLBEntries:             16,
					TLBWays:                4,
					TLBMissCycles:          4,
					WriteThroughStoreCycle: 2,
					Tints:                  []TintSpec{{Mask: 0b0011}, {Mask: 0b1100}},
					Regions: []RegionSpec{
						{Base: base, Size: mid - base, Tint: 1},
						{Base: mid, Size: end - mid, Tint: 2},
					},
				}
				if l2 {
					// Masked L2: the tint vectors above restrict the
					// wider second level too.
					cfg.EnableL2 = true
					cfg.L2Sets = 64
					cfg.L2Ways = 8
					cfg.L2HitCycles = 3
					cfg.L2Masked = true
				}
				out = append(out, cfg)
			}
		}
	}
	return out
}

func traceSpan(tr memtrace.Trace) (lo, hi uint64) {
	lo, hi = ^uint64(0), 0
	for _, a := range tr {
		if a.Addr < lo {
			lo = a.Addr
		}
		if a.Addr > hi {
			hi = a.Addr
		}
	}
	if lo > hi {
		lo, hi = 0, 0
	}
	return lo, hi
}

// goldenScript turns a trace into a script with mid-run repartitioning
// injected: a narrowing remap at one third, a rotation plus a cache flush
// at two thirds — so each golden trace also exercises
// repartition-while-resident on a real access pattern.
func goldenScript(tr memtrace.Trace) []Step {
	script := make([]Step, 0, len(tr)+3)
	third := len(tr) / 3
	for i, a := range tr {
		if third > 0 && i == third {
			script = append(script, Step{Op: "setmask", Tint: 1, Mask: 0b0001})
		}
		if third > 0 && i == 2*third {
			script = append(script,
				Step{Op: "setmask", Tint: 2, Mask: 0b0110},
				Step{Op: "flush"})
		}
		op := "read"
		if a.Op == memtrace.Write {
			op = "write"
		}
		script = append(script, Step{Op: op, Addr: a.Addr, Think: a.Think})
	}
	return script
}

// GoldenCases loads every *.trace file under dir and expands it into one
// case per matrix configuration.
func GoldenCases(dir string) ([]Case, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("conform: no golden traces under %s", dir)
	}
	sort.Strings(paths)
	var cases []Case
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		tr, err := memtrace.ReadText(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("conform: %s: %w", path, err)
		}
		if len(tr) == 0 {
			return nil, fmt.Errorf("conform: %s: empty trace", path)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".trace")
		script := goldenScript(tr)
		for _, cfg := range GoldenConfigs(tr) {
			wt := "wb"
			if cfg.WriteThrough {
				wt = "wt"
			}
			caseName := fmt.Sprintf("golden-%s-%s-%s", name, cfg.Policy, wt)
			if cfg.EnableL2 {
				caseName += "-l2m"
			}
			cases = append(cases, Case{
				Name:   caseName,
				Config: cfg,
				Script: script,
			})
		}
	}
	return cases, nil
}
