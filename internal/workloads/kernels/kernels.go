// Package kernels provides additional embedded-systems workloads beyond the
// paper's MPEG routines — matrix multiply, FIR filtering and histogramming —
// each performing its real computation while recording the address trace of
// every array reference. They exercise layout patterns the MPEG kernels do
// not: blocked 2-D reuse (matmul), sliding-window reuse (fir) and
// data-dependent scatter (histogram).
package kernels

import (
	"colcache/internal/memory"
	"colcache/internal/memtrace"
	"colcache/internal/workloads"
)

// lcg is a small deterministic generator for synthetic inputs.
type lcg uint64

func (l *lcg) next() uint32 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint32(*l >> 33)
}

type probe struct{ rec *memtrace.Recorder }

func (p probe) load(r memory.Region, off uint64) {
	if p.rec != nil {
		p.rec.LoadRegion(r, off)
	}
}

func (p probe) store(r memory.Region, off uint64) {
	if p.rec != nil {
		p.rec.StoreRegion(r, off)
	}
}

func (p probe) think(n int) {
	if p.rec != nil {
		p.rec.Think(n)
	}
}

// --- matrix multiply ---------------------------------------------------------

// MatMulConfig sizes C[n×n] = A[n×n] · B[n×n] over int32 elements.
type MatMulConfig struct {
	N    int   // matrix dimension (default 16)
	Seed int64 // input generator seed
}

func (c MatMulConfig) withDefaults() MatMulConfig {
	if c.N <= 0 {
		c.N = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func matmulInit(cfg MatMulConfig) (a, b, c []int32) {
	n := cfg.N
	rng := lcg(cfg.Seed)
	a = make([]int32, n*n)
	b = make([]int32, n*n)
	c = make([]int32, n*n)
	for i := range a {
		a[i] = int32(rng.next()%64) - 32
		b[i] = int32(rng.next()%64) - 32
	}
	return a, b, c
}

func matmulRun(n int, a, b, c []int32, p probe, aR, bR, cR memory.Region) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc int64
			for k := 0; k < n; k++ {
				p.load(aR, uint64(i*n+k)*4)
				p.load(bR, uint64(k*n+j)*4)
				p.think(1)
				acc += int64(a[i*n+k]) * int64(b[k*n+j])
			}
			c[i*n+j] = int32(acc)
			p.store(cR, uint64(i*n+j)*4)
		}
	}
}

// MatMul builds the traced workload. Variables: a (row-major streamed by
// row), b (column-strided — the classic conflict generator), c (written
// once per element).
func MatMul(cfg MatMulConfig) *workloads.Program {
	cfg = cfg.withDefaults()
	n := cfg.N
	env := workloads.NewEnv(0x100000)
	aR := env.Space.Alloc("a", uint64(n*n)*4, 64)
	bR := env.Space.Alloc("b", uint64(n*n)*4, 64)
	cR := env.Space.Alloc("c", uint64(n*n)*4, 64)
	a, b, c := matmulInit(cfg)
	matmulRun(n, a, b, c, probe{env.Rec}, aR, bR, cR)
	return env.Finish("matmul")
}

// MatMulValues returns the product matrix, computed by the same code path.
func MatMulValues(cfg MatMulConfig) []int32 {
	cfg = cfg.withDefaults()
	a, b, c := matmulInit(cfg)
	matmulRun(cfg.N, a, b, c, probe{}, memory.Region{}, memory.Region{}, memory.Region{})
	return c
}

// --- FIR filter ---------------------------------------------------------------

// FIRConfig sizes y[i] = Σ_t h[t]·x[i+t] over int32 samples.
type FIRConfig struct {
	Samples int   // input length (default 1024)
	Taps    int   // filter length (default 32)
	Seed    int64 // input generator seed
}

func (c FIRConfig) withDefaults() FIRConfig {
	if c.Samples <= 0 {
		c.Samples = 1024
	}
	if c.Taps <= 0 {
		c.Taps = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func firInit(cfg FIRConfig) (x, h, y []int32) {
	rng := lcg(cfg.Seed + 7)
	x = make([]int32, cfg.Samples)
	h = make([]int32, cfg.Taps)
	y = make([]int32, cfg.Samples-cfg.Taps+1)
	for i := range x {
		x[i] = int32(rng.next()%256) - 128
	}
	for i := range h {
		h[i] = int32(rng.next()%16) - 8
	}
	return x, h, y
}

func firRun(cfg FIRConfig, x, h, y []int32, p probe, xR, hR, yR memory.Region) {
	for i := 0; i < len(y); i++ {
		var acc int64
		for t := 0; t < cfg.Taps; t++ {
			p.load(xR, uint64(i+t)*4)
			p.load(hR, uint64(t)*4)
			p.think(1)
			acc += int64(x[i+t]) * int64(h[t])
		}
		y[i] = int32(acc >> 4)
		p.store(yR, uint64(i)*4)
	}
}

// FIR builds the traced workload. Variables: x (sliding-window reuse —
// each sample read Taps times), h (very hot coefficients), y (streamed
// output).
func FIR(cfg FIRConfig) *workloads.Program {
	cfg = cfg.withDefaults()
	env := workloads.NewEnv(0x200000)
	xR := env.Space.Alloc("x", uint64(cfg.Samples)*4, 64)
	hR := env.Space.Alloc("h", uint64(cfg.Taps)*4, 64)
	yR := env.Space.Alloc("y", uint64(cfg.Samples-cfg.Taps+1)*4, 64)
	x, h, y := firInit(cfg)
	firRun(cfg, x, h, y, probe{env.Rec}, xR, hR, yR)
	return env.Finish("fir")
}

// FIRValues returns the filtered samples, computed by the same code path.
func FIRValues(cfg FIRConfig) []int32 {
	cfg = cfg.withDefaults()
	x, h, y := firInit(cfg)
	firRun(cfg, x, h, y, probe{}, memory.Region{}, memory.Region{}, memory.Region{})
	return y
}

// --- histogram -----------------------------------------------------------------

// HistogramConfig sizes a byte-value histogram over synthetic data.
type HistogramConfig struct {
	Samples int   // input length (default 4096)
	Bins    int   // histogram size (default 256)
	Seed    int64 // input generator seed
}

func (c HistogramConfig) withDefaults() HistogramConfig {
	if c.Samples <= 0 {
		c.Samples = 4096
	}
	if c.Bins <= 0 {
		c.Bins = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func histInit(cfg HistogramConfig) (data []uint8, bins []int32) {
	rng := lcg(cfg.Seed + 13)
	data = make([]uint8, cfg.Samples)
	for i := range data {
		// Skewed distribution: clustered low values, occasional high ones.
		v := rng.next() % 256
		if v%4 != 0 {
			v %= 64
		}
		data[i] = uint8(v % uint32(cfg.Bins))
	}
	return data, make([]int32, cfg.Bins)
}

func histRun(cfg HistogramConfig, data []uint8, bins []int32, p probe, dR, bR memory.Region) {
	for i := 0; i < len(data); i++ {
		p.load(dR, uint64(i))
		p.think(1)
		bin := uint64(data[i])
		p.load(bR, bin*4)
		bins[data[i]]++
		p.store(bR, bin*4)
	}
}

// Histogram builds the traced workload. Variables: data (streamed input),
// bins (hot read-modify-write scatter — exactly the "high temporal
// locality" data the paper routes to scratchpad).
func Histogram(cfg HistogramConfig) *workloads.Program {
	cfg = cfg.withDefaults()
	env := workloads.NewEnv(0x300000)
	dR := env.Space.Alloc("data", uint64(cfg.Samples), 64)
	bR := env.Space.Alloc("bins", uint64(cfg.Bins)*4, 64)
	data, bins := histInit(cfg)
	histRun(cfg, data, bins, probe{env.Rec}, dR, bR)
	return env.Finish("histogram")
}

// HistogramValues returns the bin counts, computed by the same code path.
func HistogramValues(cfg HistogramConfig) []int32 {
	cfg = cfg.withDefaults()
	data, bins := histInit(cfg)
	histRun(cfg, data, bins, probe{}, memory.Region{}, memory.Region{})
	return bins
}
