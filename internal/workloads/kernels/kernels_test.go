package kernels

import (
	"testing"

	"colcache/internal/memtrace"
)

func TestMatMulAgainstNaive(t *testing.T) {
	cfg := MatMulConfig{N: 8, Seed: 3}
	got := MatMulValues(cfg)
	a, b, _ := matmulInit(cfg.withDefaults())
	n := 8
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want int64
			for k := 0; k < n; k++ {
				want += int64(a[i*n+k]) * int64(b[k*n+j])
			}
			if got[i*n+j] != int32(want) {
				t.Fatalf("C[%d][%d]=%d want %d", i, j, got[i*n+j], want)
			}
		}
	}
}

func TestMatMulTraceShape(t *testing.T) {
	p := MatMul(MatMulConfig{N: 4})
	counts := memtrace.RegionCounts(p.Trace, p.Vars)
	// n³ reads of a and b each, n² writes of c.
	if counts["a"] != 64 || counts["b"] != 64 || counts["c"] != 16 {
		t.Errorf("counts=%v", counts)
	}
	if counts[""] != 0 {
		t.Errorf("%d accesses outside variables", counts[""])
	}
}

func TestFIRAgainstNaive(t *testing.T) {
	cfg := FIRConfig{Samples: 64, Taps: 8, Seed: 5}
	got := FIRValues(cfg)
	x, h, _ := firInit(cfg.withDefaults())
	for i := range got {
		var want int64
		for tap := 0; tap < 8; tap++ {
			want += int64(x[i+tap]) * int64(h[tap])
		}
		if got[i] != int32(want>>4) {
			t.Fatalf("y[%d]=%d want %d", i, got[i], int32(want>>4))
		}
	}
}

func TestFIRTraceShape(t *testing.T) {
	cfg := FIRConfig{Samples: 64, Taps: 8}
	p := FIR(cfg)
	counts := memtrace.RegionCounts(p.Trace, p.Vars)
	outs := int64(64 - 8 + 1)
	if counts["x"] != outs*8 || counts["h"] != outs*8 || counts["y"] != outs {
		t.Errorf("counts=%v", counts)
	}
}

func TestHistogramSumsToSamples(t *testing.T) {
	cfg := HistogramConfig{Samples: 1000, Seed: 11}
	bins := HistogramValues(cfg)
	var total int64
	for _, b := range bins {
		if b < 0 {
			t.Fatalf("negative bin %d", b)
		}
		total += int64(b)
	}
	if total != 1000 {
		t.Errorf("bin total=%d want 1000", total)
	}
}

func TestHistogramTraceShape(t *testing.T) {
	cfg := HistogramConfig{Samples: 100}
	p := Histogram(cfg)
	counts := memtrace.RegionCounts(p.Trace, p.Vars)
	if counts["data"] != 100 {
		t.Errorf("data accesses=%d", counts["data"])
	}
	// Each sample does a bin read + bin write.
	if counts["bins"] != 200 {
		t.Errorf("bins accesses=%d", counts["bins"])
	}
	if p.Trace.Writes() != 100 {
		t.Errorf("writes=%d want 100", p.Trace.Writes())
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	a1 := MatMulValues(MatMulConfig{N: 6, Seed: 2})
	a2 := MatMulValues(MatMulConfig{N: 6, Seed: 2})
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("matmul nondeterministic")
		}
	}
	b1 := FIRValues(FIRConfig{Samples: 40, Taps: 4, Seed: 2})
	b2 := FIRValues(FIRConfig{Samples: 40, Taps: 4, Seed: 3})
	same := true
	for i := range b1 {
		if b1[i] != b2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("fir identical across different seeds")
	}
}

func TestDefaults(t *testing.T) {
	if p := MatMul(MatMulConfig{}); p.DataBytes() != 3*16*16*4 {
		t.Errorf("matmul default footprint %d", p.DataBytes())
	}
	if p := FIR(FIRConfig{}); len(p.Vars) != 3 {
		t.Errorf("fir vars=%d", len(p.Vars))
	}
	if p := Histogram(HistogramConfig{}); len(p.Trace) != 3*4096 {
		t.Errorf("histogram accesses=%d", len(p.Trace))
	}
}
