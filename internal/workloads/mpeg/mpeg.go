// Package mpeg implements the paper's embedded benchmark: the three main
// routines of an MPEG decoder — dequant, plus and idct — instrumented to
// emit the memory-reference trace of every array access (paper §4.1,
// following Panda, Dutt and Nicolau's benchmark choice).
//
// The kernels do the real arithmetic: dequant performs MPEG-2 style inverse
// quantization, plus performs the saturating pixel addition of motion
// compensation, and idct computes a genuine fixed-point 2-D 8×8 inverse DCT
// (verified in the tests against a floating-point reference). Data sizes
// follow the paper's setup: dequant and plus have working sets that fit a
// 2KB on-chip memory, while idct's data structures exceed 2KB so it cannot
// live entirely in scratchpad.
//
// Each kernel runs through a single code path whether or not it is
// recording: the trace-producing entry points pass a recorder, the
// *Values reference entry points pass nil, so the verified arithmetic is
// exactly the arithmetic that produced the trace.
package mpeg

import (
	"math"

	"colcache/internal/memory"
	"colcache/internal/memtrace"
	"colcache/internal/workloads"
)

// Config sizes the kernels.
type Config struct {
	// DequantBlocks is the number of 8×8 coefficient blocks dequant
	// processes (default 12: ~1.8KB working set, fits in 2KB).
	DequantBlocks int
	// PlusBlocks is the number of 8×8 pixel blocks plus adds
	// (default 8: 512B pixels + 1KB residuals + 512B clip table = 2KB).
	PlusBlocks int
	// IdctBlocks is the number of 8×8 blocks idct transforms
	// (default 24: 3KB of coefficients + tables, exceeding 2KB).
	IdctBlocks int
	// Seed makes the synthetic coefficient data deterministic.
	Seed int64
}

// DefaultConfig reproduces the paper's working-set relationships for a 2KB,
// 4-column on-chip memory.
var DefaultConfig = Config{DequantBlocks: 12, PlusBlocks: 8, IdctBlocks: 24, Seed: 1}

func (c Config) withDefaults() Config {
	d := DefaultConfig
	if c.DequantBlocks > 0 {
		d.DequantBlocks = c.DequantBlocks
	}
	if c.PlusBlocks > 0 {
		d.PlusBlocks = c.PlusBlocks
	}
	if c.IdctBlocks > 0 {
		d.IdctBlocks = c.IdctBlocks
	}
	if c.Seed != 0 {
		d.Seed = c.Seed
	}
	return d
}

// lcg is a small deterministic generator for synthetic coefficients.
type lcg uint64

func (l *lcg) next() uint32 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint32(*l >> 33)
}

// probe wraps an optional recorder; all kernel memory references go through
// it so the recorded and unrecorded paths are identical.
type probe struct{ rec *memtrace.Recorder }

func (p probe) load(r memory.Region, off uint64) {
	if p.rec != nil {
		p.rec.LoadRegion(r, off)
	}
}

func (p probe) store(r memory.Region, off uint64) {
	if p.rec != nil {
		p.rec.StoreRegion(r, off)
	}
}

func (p probe) think(n int) {
	if p.rec != nil {
		p.rec.Think(n)
	}
}

// --- dequant ---------------------------------------------------------------

type dequantData struct {
	qmat   []int16
	qscale []int16
	coef   []int16
}

func dequantInit(cfg Config) dequantData {
	nb := cfg.DequantBlocks
	rng := lcg(cfg.Seed)
	d := dequantData{
		qmat:   make([]int16, 64),
		qscale: make([]int16, nb),
		coef:   make([]int16, nb*64),
	}
	for i := range d.qmat {
		d.qmat[i] = int16(8 + rng.next()%32)
	}
	for i := range d.qscale {
		d.qscale[i] = int16(1 + rng.next()%31)
	}
	for i := range d.coef {
		d.coef[i] = int16(rng.next()%512) - 256
	}
	return d
}

func dequantRun(nb int, d dequantData, p probe, qmatR, qscaleR, coefR memory.Region) {
	for b := 0; b < nb; b++ {
		p.think(4) // loop setup, pointer arithmetic
		p.load(qscaleR, uint64(b)*2)
		qs := int32(d.qscale[b])
		for i := 0; i < 64; i++ {
			off := uint64(b*64+i) * 2
			p.load(coefR, off)
			p.load(qmatR, uint64(i)*2)
			p.think(3) // multiply, shift, clamp
			v := (2 * int32(d.coef[b*64+i]) * int32(d.qmat[i]) * qs) / 32
			if v > 2047 {
				v = 2047
			} else if v < -2048 {
				v = -2048
			}
			d.coef[b*64+i] = int16(v)
			p.store(coefR, off)
		}
	}
}

// Dequant builds the inverse-quantization routine: every coefficient is
// read, scaled by the quantizer matrix entry and the block's quantizer
// scale, clamped to the MPEG range, and written back in place.
//
// Variables: qmat (128B, hot — read once per coefficient), qscale (one
// 16-bit scale per block), coef (blocks×128B, each element read and written
// once).
func Dequant(cfg Config) *workloads.Program {
	cfg = cfg.withDefaults()
	nb := cfg.DequantBlocks
	env := workloads.NewEnv(0x10000)
	qmat := env.Space.Alloc("qmat", 64*2, 64)
	qscale := env.Space.Alloc("qscale", uint64(nb)*2, 64)
	coef := env.Space.Alloc("coef", uint64(nb)*64*2, 64)
	dequantRun(nb, dequantInit(cfg), probe{env.Rec}, qmat, qscale, coef)
	return env.Finish("dequant")
}

// DequantValues returns the dequantized coefficients, computed by the same
// code path Dequant records.
func DequantValues(cfg Config) []int16 {
	cfg = cfg.withDefaults()
	d := dequantInit(cfg)
	dequantRun(cfg.DequantBlocks, d, probe{}, memory.Region{}, memory.Region{}, memory.Region{})
	return d.coef
}

// --- plus ------------------------------------------------------------------

type plusData struct {
	pred  []uint8
	resid []int16
	clip  []uint8
}

func plusInit(cfg Config) plusData {
	nb := cfg.PlusBlocks
	rng := lcg(cfg.Seed + 2)
	d := plusData{
		pred:  make([]uint8, nb*64),
		resid: make([]int16, nb*64),
		clip:  make([]uint8, 512),
	}
	for i := range d.pred {
		d.pred[i] = uint8(rng.next())
	}
	for i := range d.resid {
		d.resid[i] = int16(rng.next()%256) - 128
	}
	for i := range d.clip {
		v := i - 128 // clip maps index [0,511] ~ value [-128, 383] to [0,255]
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		d.clip[i] = uint8(v)
	}
	return d
}

func plusRun(nb int, d plusData, p probe, predR, residR, clipR memory.Region) {
	for b := 0; b < nb; b++ {
		p.think(4)
		for i := 0; i < 64; i++ {
			off := uint64(b*64 + i)
			p.load(predR, off)
			p.load(residR, off*2)
			p.think(2) // index computation
			idx := int(d.pred[b*64+i]) + int(d.resid[b*64+i]) + 128
			if idx < 0 {
				idx = 0
			} else if idx > 511 {
				idx = 511
			}
			p.load(clipR, uint64(idx))
			d.pred[b*64+i] = d.clip[idx]
			p.store(predR, off)
		}
	}
}

// Plus builds the motion-compensation addition routine: each output pixel is
// the saturating sum of a prediction pixel and a residual, computed through
// a clip lookup table as reference MPEG decoders do. Output overwrites the
// prediction in place.
//
// Variables: pred (blocks×64B), resid (blocks×128B), clip (512B, hot).
func Plus(cfg Config) *workloads.Program {
	cfg = cfg.withDefaults()
	nb := cfg.PlusBlocks
	env := workloads.NewEnv(0x20000)
	pred := env.Space.Alloc("pred", uint64(nb)*64, 64)
	resid := env.Space.Alloc("resid", uint64(nb)*64*2, 64)
	clip := env.Space.Alloc("clip", 512, 64)
	plusRun(nb, plusInit(cfg), probe{env.Rec}, pred, resid, clip)
	return env.Finish("plus")
}

// PlusValues returns the saturated pixel sums, computed by the same code
// path Plus records.
func PlusValues(cfg Config) []uint8 {
	cfg = cfg.withDefaults()
	d := plusInit(cfg)
	plusRun(cfg.PlusBlocks, d, probe{}, memory.Region{}, memory.Region{}, memory.Region{})
	return d.pred
}

// --- idct ------------------------------------------------------------------

// idctCos returns the fixed-point IDCT basis table C[k][n] =
// c(k)·cos((2n+1)kπ/16) scaled by 2^11, where c(0)=√⅛ and c(k>0)=½.
func idctCos() []int32 {
	t := make([]int32, 64)
	for k := 0; k < 8; k++ {
		ck := 0.5
		if k == 0 {
			ck = math.Sqrt(0.125)
		}
		for n := 0; n < 8; n++ {
			t[k*8+n] = int32(math.Round(ck * math.Cos(float64(2*n+1)*float64(k)*math.Pi/16) * 2048))
		}
	}
	return t
}

type idctData struct {
	cos    []int32
	tmp    []int32
	blocks []int16
}

func idctInit(cfg Config) idctData {
	nb := cfg.IdctBlocks
	rng := lcg(cfg.Seed + 3)
	d := idctData{cos: idctCos(), tmp: make([]int32, 64), blocks: make([]int16, nb*64)}
	for i := range d.blocks {
		// Sparse-ish coefficient blocks, like real DCT output.
		if rng.next()%4 == 0 {
			d.blocks[i] = int16(rng.next()%512) - 256
		}
	}
	return d
}

func idctRun(nb int, d idctData, p probe, cosR, tmpR, blocksR memory.Region) {
	for b := 0; b < nb; b++ {
		p.think(6)
		base := b * 64
		// Row pass: tmp[r][c] = Σ_k block[r][k]·cos[k][c].
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				var acc int64
				for k := 0; k < 8; k++ {
					p.load(blocksR, uint64(base+r*8+k)*2)
					p.load(cosR, uint64(k*8+c)*4)
					p.think(1) // multiply-accumulate
					acc += int64(d.blocks[base+r*8+k]) * int64(d.cos[k*8+c])
				}
				// Keep 3 fractional bits through the intermediate and
				// round, for accuracy against the float reference.
				d.tmp[r*8+c] = int32((acc + 1<<7) >> 8)
				p.store(tmpR, uint64(r*8+c)*4)
			}
		}
		// Column pass: block[r][c] = Σ_k tmp[k][c]·cos[k][r], clamped.
		for c := 0; c < 8; c++ {
			for r := 0; r < 8; r++ {
				var acc int64
				for k := 0; k < 8; k++ {
					p.load(tmpR, uint64(k*8+c)*4)
					p.load(cosR, uint64(k*8+r)*4)
					p.think(1)
					acc += int64(d.tmp[k*8+c]) * int64(d.cos[k*8+r])
				}
				v := (acc + 1<<13) >> 14
				if v > 255 {
					v = 255
				} else if v < -256 {
					v = -256
				}
				d.blocks[base+r*8+c] = int16(v)
				p.store(blocksR, uint64(base+r*8+c)*2)
			}
		}
	}
}

// Idct builds the 2-D inverse DCT routine: a row pass into a 32-bit
// intermediate followed by a column pass back into the coefficient array,
// both reading the shared fixed-point cosine table.
//
// Variables: cos (256B, very hot — read 8 times per output element),
// tmp (256B, hot), blocks (blocks×128B, streaming).
func Idct(cfg Config) *workloads.Program {
	cfg = cfg.withDefaults()
	nb := cfg.IdctBlocks
	env := workloads.NewEnv(0x40000)
	cosT := env.Space.Alloc("cos", 64*4, 64)
	tmp := env.Space.Alloc("tmp", 64*4, 64)
	blocks := env.Space.Alloc("blocks", uint64(nb)*64*2, 64)
	idctRun(nb, idctInit(cfg), probe{env.Rec}, cosT, tmp, blocks)
	return env.Finish("idct")
}

// IdctValues returns the transformed blocks, computed by the same code path
// Idct records.
func IdctValues(cfg Config) []int16 {
	cfg = cfg.withDefaults()
	d := idctInit(cfg)
	idctRun(cfg.IdctBlocks, d, probe{}, memory.Region{}, memory.Region{}, memory.Region{})
	return d.blocks
}

// IdctTransform applies the same fixed-point 2-D IDCT to one 8×8 block in
// place; the tests compare it against a floating-point reference IDCT.
func IdctTransform(block []int16) {
	d := idctData{cos: idctCos(), tmp: make([]int32, 64), blocks: block}
	idctRun(1, d, probe{}, memory.Region{}, memory.Region{}, memory.Region{})
}
