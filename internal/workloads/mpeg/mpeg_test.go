package mpeg

import (
	"math"
	"math/rand"
	"testing"

	"colcache/internal/memtrace"
)

func TestDefaultWorkingSetSizes(t *testing.T) {
	// The paper's setup: dequant and plus fit a 2KB on-chip memory, idct
	// does not.
	dq := Dequant(Config{})
	pl := Plus(Config{})
	id := Idct(Config{})
	if got := dq.DataBytes(); got > 2048 {
		t.Errorf("dequant footprint %d exceeds 2KB", got)
	}
	if got := pl.DataBytes(); got > 2048 {
		t.Errorf("plus footprint %d exceeds 2KB", got)
	}
	if got := id.DataBytes(); got <= 2048 {
		t.Errorf("idct footprint %d does not exceed 2KB", got)
	}
}

func TestDequantTraceShape(t *testing.T) {
	cfg := Config{DequantBlocks: 2}
	p := Dequant(cfg)
	// Per block: 1 qscale read + 64 × (coef read + qmat read + coef write).
	wantAccesses := 2 * (1 + 64*3)
	if len(p.Trace) != wantAccesses {
		t.Errorf("accesses=%d want %d", len(p.Trace), wantAccesses)
	}
	counts := memtrace.RegionCounts(p.Trace, p.Vars)
	if counts["qmat"] != 2*64 {
		t.Errorf("qmat accesses=%d want 128", counts["qmat"])
	}
	if counts["coef"] != 2*64*2 {
		t.Errorf("coef accesses=%d want 256", counts["coef"])
	}
	if counts[""] != 0 {
		t.Errorf("%d accesses outside declared variables", counts[""])
	}
}

func TestDequantValuesClamped(t *testing.T) {
	vals := DequantValues(Config{})
	var nonzero int
	for _, v := range vals {
		if v > 2047 || v < -2048 {
			t.Fatalf("value %d outside MPEG range", v)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("dequant produced all zeros")
	}
}

func TestDequantScaling(t *testing.T) {
	// With the same seed, values must be deterministic.
	a := DequantValues(Config{Seed: 7})
	b := DequantValues(Config{Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	c := DequantValues(Config{Seed: 8})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical output")
	}
}

func TestPlusValuesMatchDirectSaturation(t *testing.T) {
	cfg := Config{PlusBlocks: 3, Seed: 5}
	got := PlusValues(cfg)
	// Recompute inputs and saturate directly, without the clip table.
	fresh := plusInit(cfg.withDefaults())
	for i := range got {
		v := int(fresh.pred[i]) + int(fresh.resid[i])
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		if got[i] != uint8(v) {
			t.Fatalf("pixel %d: got %d want %d", i, got[i], v)
		}
	}
}

func TestPlusTraceShape(t *testing.T) {
	p := Plus(Config{PlusBlocks: 1})
	counts := memtrace.RegionCounts(p.Trace, p.Vars)
	if counts["pred"] != 128 { // 64 reads + 64 writes
		t.Errorf("pred accesses=%d want 128", counts["pred"])
	}
	if counts["resid"] != 64 || counts["clip"] != 64 {
		t.Errorf("resid=%d clip=%d want 64 each", counts["resid"], counts["clip"])
	}
}

// floatIDCT is an independent floating-point reference 2-D IDCT.
func floatIDCT(in []int16) []float64 {
	c := func(k int) float64 {
		if k == 0 {
			return math.Sqrt(0.125)
		}
		return 0.5
	}
	out := make([]float64, 64)
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			var sum float64
			for u := 0; u < 8; u++ {
				for v := 0; v < 8; v++ {
					sum += c(u) * c(v) * float64(in[u*8+v]) *
						math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) *
						math.Cos(float64(2*y+1)*float64(v)*math.Pi/16)
				}
			}
			out[x*8+y] = sum
		}
	}
	return out
}

func TestIdctMatchesFloatReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		block := make([]int16, 64)
		for i := range block {
			if r.Intn(3) == 0 {
				block[i] = int16(r.Intn(256) - 128)
			}
		}
		ref := floatIDCT(block)
		got := make([]int16, 64)
		copy(got, block)
		IdctTransform(got)
		for i := range ref {
			want := ref[i]
			if want > 255 {
				want = 255
			} else if want < -256 {
				want = -256
			}
			if math.Abs(float64(got[i])-want) > 2.0 {
				t.Fatalf("trial %d elem %d: fixed=%d float=%.2f", trial, i, got[i], want)
			}
		}
	}
}

func TestIdctDCOnly(t *testing.T) {
	// A pure DC block must transform to a flat block of DC/8.
	block := make([]int16, 64)
	block[0] = 800
	IdctTransform(block)
	want := int16(100)
	for i, v := range block {
		if v < want-1 || v > want+1 {
			t.Fatalf("elem %d = %d want ~%d", i, v, want)
		}
	}
}

func TestIdctTraceShape(t *testing.T) {
	p := Idct(Config{IdctBlocks: 1})
	counts := memtrace.RegionCounts(p.Trace, p.Vars)
	// Row pass: 64 outputs × 8 (block+cos reads) + 64 tmp writes.
	// Col pass: 64 outputs × 8 (tmp+cos reads) + 64 block writes.
	if counts["cos"] != 2*64*8 {
		t.Errorf("cos accesses=%d want 1024", counts["cos"])
	}
	if counts["tmp"] != 64+64*8 {
		t.Errorf("tmp accesses=%d want %d", counts["tmp"], 64+64*8)
	}
	if counts["blocks"] != 64*8+64 {
		t.Errorf("blocks accesses=%d want %d", counts["blocks"], 64*8+64)
	}
}

func TestIdctValuesDeterministic(t *testing.T) {
	a := IdctValues(Config{IdctBlocks: 2, Seed: 9})
	b := IdctValues(Config{IdctBlocks: 2, Seed: 9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestConfigOverrides(t *testing.T) {
	cfg := Config{DequantBlocks: 3}.withDefaults()
	if cfg.DequantBlocks != 3 {
		t.Errorf("override lost: %d", cfg.DequantBlocks)
	}
	if cfg.PlusBlocks != DefaultConfig.PlusBlocks || cfg.Seed != DefaultConfig.Seed {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestProgramVarLookup(t *testing.T) {
	p := Dequant(Config{})
	if _, ok := p.Var("qmat"); !ok {
		t.Error("qmat missing")
	}
	if _, ok := p.Var("nope"); ok {
		t.Error("phantom variable found")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustVar did not panic")
		}
	}()
	p.MustVar("nope")
}

func TestPipelinePhases(t *testing.T) {
	phases := Pipeline(Config{IdctBlocks: 4})
	if len(phases) != 3 {
		t.Fatalf("phases=%d", len(phases))
	}
	names := []string{"dequant", "idct", "plus"}
	for i, ph := range phases {
		if ph.Name != names[i] {
			t.Errorf("phase %d = %s want %s", i, ph.Name, names[i])
		}
		if len(ph.Prog.Trace) == 0 {
			t.Errorf("phase %s has empty trace", ph.Name)
		}
		counts := memtrace.RegionCounts(ph.Prog.Trace, ph.Vars)
		if counts[""] != 0 {
			t.Errorf("phase %s: %d accesses outside variables", ph.Name, counts[""])
		}
		// Every phase touches the shared block buffer.
		if counts["block"] == 0 {
			t.Errorf("phase %s never touches the shared block buffer", ph.Name)
		}
	}
	// The phase-specific companions appear only in their phase.
	c0 := memtrace.RegionCounts(phases[0].Prog.Trace, phases[0].Vars)
	c1 := memtrace.RegionCounts(phases[1].Prog.Trace, phases[1].Vars)
	c2 := memtrace.RegionCounts(phases[2].Prog.Trace, phases[2].Vars)
	if c0["qmat"] == 0 || c0["cos"] != 0 || c0["pred"] != 0 {
		t.Errorf("dequant companions wrong: %v", c0)
	}
	if c1["cos"] == 0 || c1["qmat"] != 0 {
		t.Errorf("idct companions wrong: %v", c1)
	}
	if c2["pred"] == 0 || c2["clip"] == 0 || c2["cos"] != 0 {
		t.Errorf("plus companions wrong: %v", c2)
	}
}

func TestPipelineTracesIndependent(t *testing.T) {
	// snapshot must prevent the recorder's Reset from aliasing phases.
	phases := Pipeline(Config{IdctBlocks: 2})
	a0 := phases[0].Prog.Trace[0]
	if phases[1].Prog.Trace[0] == a0 && phases[2].Prog.Trace[0] == a0 {
		t.Error("phase traces alias each other")
	}
}
