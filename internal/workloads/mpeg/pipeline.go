package mpeg

import (
	"colcache/internal/memory"
	"colcache/internal/memtrace"
	"colcache/internal/workloads"
)

// Pipeline builds the three decoder routines as a single streaming
// application with *shared* variables: each macroblock flows dequant →
// idct → plus through one shared coefficient buffer, with a shared
// prediction frame. Unlike the standalone kernels (disjoint variables, used
// by Figure 4), the pipeline's routines contend for the same buffers with
// different companions per phase — the situation the paper's §3.2 dynamic
// layout targets ("if procedures share variables, and the access patterns
// corresponding to these shared variables change from procedure to
// procedure, it is worthwhile to consider remapping").
//
// Per phase, the shared block buffer's hot companion changes:
//
//	dequant: block ↔ qmat        (quantizer matrix)
//	idct:    block ↔ cos, tmp    (basis table, intermediate)
//	plus:    block ↔ pred, clip  (prediction pixels, saturation table)
//
// PipelinePhase carries one routine's trace and variable set, ready for
// layout.BuildDynamic.
type PipelinePhase struct {
	Name string
	Prog *workloads.Program
	Vars []memory.Region
}

// Pipeline generates the three phases over shared buffers. Blocks are
// processed in batches (one phase pass per batch would be the streaming
// formulation; for layout purposes each routine's whole run is one phase,
// as in the paper's procedure-level granularity).
func Pipeline(cfg Config) []PipelinePhase {
	cfg = cfg.withDefaults()
	nb := cfg.IdctBlocks

	// One shared address space for the whole application.
	env := workloads.NewEnv(0x10000)
	block := env.Space.Alloc("block", uint64(nb)*64*2, 64) // shared int16 coefficient/pixel stream
	qmat := env.Space.Alloc("qmat", 64*2, 64)              // dequant's table
	qscale := env.Space.Alloc("qscale", uint64(nb)*2, 64)  // per-block scales
	cosT := env.Space.Alloc("cos", 64*4, 64)               // idct's basis
	tmp := env.Space.Alloc("tmp", 64*4, 64)                // idct's intermediate
	pred := env.Space.Alloc("pred", uint64(nb)*64, 64)     // plus's prediction pixels
	clip := env.Space.Alloc("clip", 512, 64)               // plus's saturation table
	allVars := env.Space.Regions()

	// Shared real data.
	dq := dequantInit(Config{DequantBlocks: nb, Seed: cfg.Seed})
	id := idctInit(Config{IdctBlocks: nb, Seed: cfg.Seed})
	pl := plusInit(Config{PlusBlocks: nb, Seed: cfg.Seed})
	// The pipeline operates on one shared block array: seed it with the
	// dequant inputs.
	blockV := dq.coef

	var phases []PipelinePhase

	// Phase 1: dequant over the shared block buffer.
	env.Rec.Reset()
	dequantRun(nb, dequantData{qmat: dq.qmat, qscale: dq.qscale, coef: blockV},
		probe{env.Rec}, qmat, qscale, block)
	phases = append(phases, PipelinePhase{
		Name: "dequant",
		Prog: &workloads.Program{Name: "dequant", Trace: snapshot(env.Rec.Trace()), Vars: allVars},
		Vars: allVars,
	})

	// Phase 2: idct in place on the same buffer.
	env.Rec.Reset()
	idctRun(nb, idctData{cos: id.cos, tmp: id.tmp, blocks: blockV},
		probe{env.Rec}, cosT, tmp, block)
	phases = append(phases, PipelinePhase{
		Name: "idct",
		Prog: &workloads.Program{Name: "idct", Trace: snapshot(env.Rec.Trace()), Vars: allVars},
		Vars: allVars,
	})

	// Phase 3: plus — add the reconstructed residuals to the prediction.
	env.Rec.Reset()
	plusPipelineRun(nb, pl.pred, blockV, pl.clip, probe{env.Rec}, pred, block, clip)
	phases = append(phases, PipelinePhase{
		Name: "plus",
		Prog: &workloads.Program{Name: "plus", Trace: snapshot(env.Rec.Trace()), Vars: allVars},
		Vars: allVars,
	})
	return phases
}

// plusPipelineRun is the motion-compensation add reading residuals from the
// shared int16 block buffer (rather than a private residual array).
func plusPipelineRun(nb int, predV []uint8, blockV []int16, clipV []uint8, p probe, predR, blockR, clipR memory.Region) {
	for b := 0; b < nb; b++ {
		p.think(4)
		for i := 0; i < 64; i++ {
			off := uint64(b*64 + i)
			p.load(predR, off)
			p.load(blockR, off*2)
			p.think(2)
			idx := int(predV[b*64+i]) + int(blockV[b*64+i]) + 128
			if idx < 0 {
				idx = 0
			} else if idx > 511 {
				idx = 511
			}
			p.load(clipR, uint64(idx))
			predV[b*64+i] = clipV[idx]
			p.store(predR, off)
		}
	}
}

// snapshot copies a recorder's trace so later Reset calls cannot alias
// earlier phases.
func snapshot(t memtrace.Trace) memtrace.Trace {
	out := make(memtrace.Trace, len(t))
	copy(out, t)
	return out
}
