package synth

import (
	"testing"

	"colcache/internal/memtrace"
)

func TestStream(t *testing.T) {
	p := Stream(0, 256, 4, 2)
	if len(p.Trace) != 2*64 {
		t.Errorf("accesses=%d want 128", len(p.Trace))
	}
	if p.Trace[0].Addr != 0 || p.Trace[1].Addr != 4 {
		t.Errorf("stride wrong: %x %x", p.Trace[0].Addr, p.Trace[1].Addr)
	}
	if p.Trace.Writes() != 0 {
		t.Error("stream contains writes")
	}
}

func TestStrided(t *testing.T) {
	p := Strided(0, 1024, 256, 1)
	if len(p.Trace) != 4 {
		t.Fatalf("accesses=%d want 4", len(p.Trace))
	}
	for i, a := range p.Trace {
		if a.Addr != uint64(i*256) {
			t.Errorf("access %d at %#x", i, a.Addr)
		}
	}
}

func TestPhaseShift(t *testing.T) {
	const (
		regionBytes = 1024
		phases      = 4
		passes      = 2
		touches     = 3
		line        = 32
	)
	p := PhaseShift(0, regionBytes, phases, passes, touches, line, 1)
	wantLen := phases * passes * (regionBytes/line + touches)
	if len(p.Trace) != wantLen {
		t.Errorf("accesses=%d want %d", len(p.Trace), wantLen)
	}
	if len(p.Vars) != 2 || p.Vars[0].Name != "phaseA" || p.Vars[1].Name != "phaseB" {
		t.Fatalf("vars=%v want phaseA+phaseB", p.Vars)
	}
	a, b := p.Vars[0], p.Vars[1]
	// Even phases sweep A, odd phases sweep B.
	if got := p.Trace[0].Addr; got < a.Base || got >= a.End() {
		t.Errorf("phase 0 starts at %#x, outside phaseA %v", got, a)
	}
	perPhase := passes * (regionBytes/line + touches)
	if got := p.Trace[perPhase].Addr; got < b.Base || got >= b.End() {
		t.Errorf("phase 1 starts at %#x, outside phaseB %v", got, b)
	}
	// Deterministic.
	p2 := PhaseShift(0, regionBytes, phases, passes, touches, line, 1)
	for i := range p.Trace {
		if p.Trace[i] != p2.Trace[i] {
			t.Fatalf("trace not deterministic at access %d", i)
		}
	}
}

func TestRandomInBoundsAndDeterministic(t *testing.T) {
	p1 := Random(0x1000, 512, 100, 7)
	p2 := Random(0x1000, 512, 100, 7)
	if len(p1.Trace) != 100 {
		t.Fatalf("accesses=%d", len(p1.Trace))
	}
	reg := p1.Vars[0]
	for i := range p1.Trace {
		if !reg.Contains(p1.Trace[i].Addr) {
			t.Fatalf("access %d at %#x outside buffer", i, p1.Trace[i].Addr)
		}
		if p1.Trace[i] != p2.Trace[i] {
			t.Fatal("same seed diverged")
		}
	}
	p3 := Random(0x1000, 512, 100, 8)
	same := true
	for i := range p1.Trace {
		if p1.Trace[i] != p3.Trace[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds identical")
	}
}

func TestRandomZeroSeedUsesDefault(t *testing.T) {
	p := Random(0, 512, 10, 0)
	if len(p.Trace) != 10 {
		t.Errorf("accesses=%d", len(p.Trace))
	}
}

func TestPointerChaseVisitsAllNodes(t *testing.T) {
	const nodes = 16
	p := PointerChase(0, nodes, 64, nodes, 3)
	seen := make(map[uint64]bool)
	for _, a := range p.Trace {
		seen[a.Addr/64] = true
	}
	// Sattolo's permutation is a single cycle, so nodes hops visit all nodes.
	if len(seen) != nodes {
		t.Errorf("visited %d distinct nodes want %d", len(seen), nodes)
	}
}

func TestWriteSweep(t *testing.T) {
	p := WriteSweep(0, 128, 4, 1)
	if p.Trace.Reads() != 0 || p.Trace.Writes() != 32 {
		t.Errorf("R=%d W=%d", p.Trace.Reads(), p.Trace.Writes())
	}
	if got := memtrace.RegionCounts(p.Trace, p.Vars)[""]; got != 0 {
		t.Errorf("%d accesses outside buffer", got)
	}
}
