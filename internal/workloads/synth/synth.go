// Package synth generates synthetic memory-reference workloads — sequential
// streams, strided sweeps, uniform random accesses and pointer chases — used
// by tests, examples and ablation benchmarks to exercise the cache with
// access patterns of known locality.
package synth

import (
	"colcache/internal/memory"
	"colcache/internal/workloads"
)

// xorshift is a tiny deterministic PRNG so workloads are reproducible.
type xorshift uint64

func newXorshift(seed int64) xorshift {
	if seed == 0 {
		return xorshift(0x9e3779b97f4a7c15)
	}
	return xorshift(seed)
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v >> 12
	v ^= v << 25
	v ^= v >> 27
	*x = xorshift(v)
	return v * 0x2545f4914f6cdd1d
}

// Stream builds a workload that sweeps sequentially over a buffer of size
// bytes, passes times, reading every element at the given element size.
// Pure spatial locality, no temporal reuse within a pass.
func Stream(base memory.Addr, size uint64, elem int, passes int) *workloads.Program {
	env := workloads.NewEnv(base)
	buf := env.Space.Alloc("stream", size, 64)
	for p := 0; p < passes; p++ {
		for off := uint64(0); off+uint64(elem) <= size; off += uint64(elem) {
			env.Rec.Think(1)
			env.Rec.LoadRegion(buf, off)
		}
	}
	return env.Finish("stream")
}

// Strided builds a workload reading a buffer at a fixed stride, passes
// times. A stride equal to the cache's set span makes every access map to
// one set — the classic conflict generator.
func Strided(base memory.Addr, size, stride uint64, passes int) *workloads.Program {
	env := workloads.NewEnv(base)
	buf := env.Space.Alloc("strided", size, 64)
	for p := 0; p < passes; p++ {
		for off := uint64(0); off < size; off += stride {
			env.Rec.Think(1)
			env.Rec.LoadRegion(buf, off)
		}
	}
	return env.Finish("strided")
}

// Random builds a workload of n uniform random reads over a buffer of size
// bytes. No locality beyond what the buffer size provides.
func Random(base memory.Addr, size uint64, n int, seed int64) *workloads.Program {
	env := workloads.NewEnv(base)
	buf := env.Space.Alloc("random", size, 64)
	rng := newXorshift(seed)
	for i := 0; i < n; i++ {
		env.Rec.Think(2)
		env.Rec.LoadRegion(buf, rng.next()%size)
	}
	return env.Finish("random")
}

// PointerChase builds a workload following a random cyclic permutation of
// nodes node-sized cells, hops times: pure dependent loads, one access per
// node, the classic latency-bound pattern.
func PointerChase(base memory.Addr, nodes int, nodeBytes uint64, hops int, seed int64) *workloads.Program {
	env := workloads.NewEnv(base)
	buf := env.Space.Alloc("chase", uint64(nodes)*nodeBytes, 64)
	// Sattolo's algorithm for a single-cycle permutation.
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	rng := newXorshift(seed)
	for i := nodes - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i))
		perm[i], perm[j] = perm[j], perm[i]
	}
	cur := 0
	for h := 0; h < hops; h++ {
		env.Rec.Think(1)
		env.Rec.LoadRegion(buf, uint64(cur)*nodeBytes)
		cur = perm[cur]
	}
	return env.Finish("chase")
}

// PhaseShift builds a two-region workload whose hot working set alternates
// between the regions phase by phase: in even phases region "phaseA" is
// swept line by line passes times while "phaseB" receives only touches
// random reads per pass, and odd phases swap the roles. No single static
// column split serves both phases when each region alone overflows its
// share — the workload the adaptive column-allocation controller exists
// for.
func PhaseShift(base memory.Addr, regionBytes uint64, phases, passes, touches, lineBytes int, seed int64) *workloads.Program {
	env := workloads.NewEnv(base)
	a := env.Space.Alloc("phaseA", regionBytes, 64)
	b := env.Space.Alloc("phaseB", regionBytes, 64)
	rng := newXorshift(seed)
	for ph := 0; ph < phases; ph++ {
		hot, cold := a, b
		if ph%2 == 1 {
			hot, cold = b, a
		}
		for p := 0; p < passes; p++ {
			for off := uint64(0); off < regionBytes; off += uint64(lineBytes) {
				env.Rec.Think(1)
				env.Rec.LoadRegion(hot, off)
			}
			for i := 0; i < touches; i++ {
				env.Rec.Think(1)
				env.Rec.LoadRegion(cold, rng.next()%regionBytes)
			}
		}
	}
	return env.Finish("phaseshift")
}

// WriteSweep builds a workload that writes every element of a buffer,
// passes times — a dirty-line generator for writeback experiments.
func WriteSweep(base memory.Addr, size uint64, elem int, passes int) *workloads.Program {
	env := workloads.NewEnv(base)
	buf := env.Space.Alloc("wsweep", size, 64)
	for p := 0; p < passes; p++ {
		for off := uint64(0); off+uint64(elem) <= size; off += uint64(elem) {
			env.Rec.Think(1)
			env.Rec.StoreRegion(buf, off)
		}
	}
	return env.Finish("wsweep")
}
