package workloads

import (
	"testing"
)

func TestEnvAndProgram(t *testing.T) {
	env := NewEnv(0x1000)
	a := env.Space.Alloc("a", 64, 64)
	b := env.Space.Alloc("b", 32, 64)
	env.Rec.Think(2)
	env.Rec.LoadRegion(a, 0)
	env.Rec.StoreRegion(b, 4)

	p := env.Finish("prog")
	if p.Name != "prog" {
		t.Errorf("name=%q", p.Name)
	}
	if len(p.Trace) != 2 || len(p.Vars) != 2 {
		t.Fatalf("trace=%d vars=%d", len(p.Trace), len(p.Vars))
	}
	if p.Trace[0].Addr != a.Base || p.Trace[1].Addr != b.Base+4 {
		t.Errorf("addrs: %#x %#x", p.Trace[0].Addr, p.Trace[1].Addr)
	}
	if got := p.DataBytes(); got != 96 {
		t.Errorf("DataBytes=%d want 96", got)
	}
	if r, ok := p.Var("b"); !ok || r.Size != 32 {
		t.Errorf("Var(b)=%v,%v", r, ok)
	}
	if _, ok := p.Var("zzz"); ok {
		t.Error("phantom var")
	}
	if r := p.MustVar("a"); r.Name != "a" {
		t.Errorf("MustVar=%v", r)
	}
}

func TestMustVarPanics(t *testing.T) {
	p := &Program{Name: "p"}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.MustVar("missing")
}
