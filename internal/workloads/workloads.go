// Package workloads defines the common shape of the benchmark programs that
// drive the experiments: a program is a memory-reference trace plus the
// address map of the variables it touches, so the layout algorithm can
// reason about which variable each access belongs to.
//
// The kernels in the sub-packages perform their real computation on Go data
// while recording the address of every simulated array reference, so the
// traces are the genuine reference streams of the algorithms, and the
// kernels themselves are testable against reference implementations.
package workloads

import (
	"fmt"

	"colcache/internal/memory"
	"colcache/internal/memtrace"
)

// Program is a workload ready to run on the simulator.
type Program struct {
	Name  string
	Trace memtrace.Trace
	Vars  []memory.Region // every simulated variable, in allocation order
}

// Var returns the named variable's region.
func (p *Program) Var(name string) (memory.Region, bool) {
	for _, r := range p.Vars {
		if r.Name == name {
			return r, true
		}
	}
	return memory.Region{}, false
}

// MustVar is Var that panics when the variable is missing; for experiment
// code whose variable set is fixed.
func (p *Program) MustVar(name string) memory.Region {
	r, ok := p.Var(name)
	if !ok {
		panic(fmt.Sprintf("workloads: program %s has no variable %q", p.Name, name))
	}
	return r
}

// DataBytes returns the total footprint of the program's variables.
func (p *Program) DataBytes() uint64 {
	var total uint64
	for _, r := range p.Vars {
		total += r.Size
	}
	return total
}

// Env couples an address-space allocator with a trace recorder; kernels
// allocate their variables and record their references through it.
type Env struct {
	Space *memory.Space
	Rec   *memtrace.Recorder
}

// NewEnv returns an Env allocating from base.
func NewEnv(base memory.Addr) *Env {
	return &Env{Space: memory.NewSpace(base), Rec: &memtrace.Recorder{}}
}

// Finish packages the recorded trace and variables into a Program.
func (e *Env) Finish(name string) *Program {
	return &Program{Name: name, Trace: e.Rec.Trace(), Vars: e.Space.Regions()}
}
