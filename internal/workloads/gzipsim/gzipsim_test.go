package gzipsim

import (
	"bytes"
	"testing"
	"testing/quick"

	"colcache/internal/memory"
	"colcache/internal/memtrace"
)

func TestCompressDecompressRoundTrip(t *testing.T) {
	input := make([]byte, 4096)
	SyntheticText(input, 42)
	toks := Compress(Config{WindowBytes: 4096}, input)
	got := Decompress(toks)
	if !bytes.Equal(got, input) {
		t.Fatalf("round trip failed: %d bytes in, %d out", len(input), len(got))
	}
	// Pseudo-text must actually compress: fewer tokens than bytes.
	if len(toks) >= len(input)/2 {
		t.Errorf("only %d tokens for %d bytes — matcher found too few matches", len(toks), len(input))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		toks := Compress(Config{WindowBytes: len(data)}, data)
		return bytes.Equal(Decompress(toks), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripAdversarialInputs(t *testing.T) {
	cases := [][]byte{
		[]byte("a"),
		[]byte("ab"),
		[]byte("abc"),
		bytes.Repeat([]byte("a"), 500),
		bytes.Repeat([]byte("abc"), 100),
		{0, 0, 0, 0, 0, 0, 0, 0},
		[]byte("abcdefghijklmnopqrstuvwxyz"),
	}
	for _, in := range cases {
		toks := Compress(Config{WindowBytes: len(in)}, in)
		if got := Decompress(toks); !bytes.Equal(got, in) {
			t.Errorf("round trip failed for %q", in)
		}
	}
}

func TestMatchesRespectBounds(t *testing.T) {
	input := bytes.Repeat([]byte("columncache "), 400)
	cfg := Config{WindowBytes: len(input), MaxChain: 8}.withDefaults()
	toks := Compress(cfg, input)
	for _, tok := range toks {
		if tok.Length == 0 {
			continue
		}
		if tok.Length < cfg.MinMatch || tok.Length > cfg.MaxMatch {
			t.Fatalf("match length %d outside [%d,%d]", tok.Length, cfg.MinMatch, cfg.MaxMatch)
		}
		if tok.Distance <= 0 {
			t.Fatalf("non-positive distance %d", tok.Distance)
		}
	}
}

func TestJobTraceWithinVariables(t *testing.T) {
	p := Job(Config{WindowBytes: 2048}, 0x100000)
	counts := memtrace.RegionCounts(p.Trace, p.Vars)
	if counts[""] != 0 {
		t.Errorf("%d accesses outside declared variables", counts[""])
	}
	for _, name := range []string{"window", "head", "prev", "out"} {
		if counts[name] == 0 {
			t.Errorf("variable %s never accessed", name)
		}
	}
	if p.Trace.Instructions() <= int64(len(p.Trace)) {
		t.Error("trace carries no think time")
	}
}

func TestJobDisjointAddressSpaces(t *testing.T) {
	g := memory.MustGeometry(32, 4096)
	a := Job(Config{WindowBytes: 1024}, 0)
	b := Job(Config{WindowBytes: 1024}, 1<<30)
	aMax := memtrace.Summarize(a.Trace, g).MaxAddr
	bMin := memtrace.Summarize(b.Trace, g).MinAddr
	if aMax >= bMin {
		t.Errorf("address spaces overlap: aMax=%#x bMin=%#x", aMax, bMin)
	}
}

func TestSyntheticTextDeterministic(t *testing.T) {
	a := make([]byte, 256)
	b := make([]byte, 256)
	SyntheticText(a, 1)
	SyntheticText(b, 1)
	if !bytes.Equal(a, b) {
		t.Error("same seed, different text")
	}
	SyntheticText(b, 2)
	if bytes.Equal(a, b) {
		t.Error("different seeds, same text")
	}
}

func TestWorkingSetSize(t *testing.T) {
	// The default job's working set must exceed 16KB (the small cache in
	// Fig. 5) — that contrast is what the experiment depends on.
	p := Job(Config{}, 0)
	if got := p.DataBytes(); got <= 16*1024 {
		t.Errorf("working set %d bytes does not exceed 16KB", got)
	}
}
