// Package gzipsim implements the compression workload of the paper's
// multitasking experiment (paper §4.2): the core match-finding loop of a
// gzip/deflate-style LZ77 compressor with hash chains, instrumented to emit
// the memory-reference trace of every array access.
//
// What matters for the experiment is the memory behaviour of the real
// algorithm: a large reused working set (the sliding window plus the hash
// head and chain tables) with good temporal locality that collapses when a
// competing job evicts it between time quanta. The compressor genuinely
// compresses — the tests decompress its output and verify a byte-exact round
// trip — so the trace is the authentic reference stream of the algorithm.
package gzipsim

import (
	"colcache/internal/memory"
	"colcache/internal/memtrace"
	"colcache/internal/workloads"
)

// Config sizes the compressor.
type Config struct {
	// WindowBytes is the input window size (default 16KB).
	WindowBytes int
	// HashBits sizes the head table at 2^HashBits entries (default 11).
	HashBits int
	// MaxChain bounds how many chain links the matcher walks (default 16).
	MaxChain int
	// MinMatch/MaxMatch bound emitted match lengths (defaults 3 and 66).
	MinMatch, MaxMatch int
	// Seed drives the synthetic text generator.
	Seed int64
}

// DefaultConfig gives a ~56KB working set (window + head + prev + output):
// larger than the 16KB cache of Figure 5 and comfortably inside the 128KB
// one, which is what produces the paper's two curve families.
var DefaultConfig = Config{
	WindowBytes: 16 * 1024,
	HashBits:    11,
	MaxChain:    16,
	MinMatch:    3,
	MaxMatch:    66,
	Seed:        1,
}

func (c Config) withDefaults() Config {
	d := DefaultConfig
	if c.WindowBytes > 0 {
		d.WindowBytes = c.WindowBytes
	}
	if c.HashBits > 0 {
		d.HashBits = c.HashBits
	}
	if c.MaxChain > 0 {
		d.MaxChain = c.MaxChain
	}
	if c.MinMatch > 0 {
		d.MinMatch = c.MinMatch
	}
	if c.MaxMatch > 0 {
		d.MaxMatch = c.MaxMatch
	}
	if c.Seed != 0 {
		d.Seed = c.Seed
	}
	return d
}

// Token is one emitted LZ77 symbol: either a literal byte or a
// (distance, length) back-reference.
type Token struct {
	Literal  byte
	Distance int // 0 for a literal
	Length   int // 0 for a literal
}

// SyntheticText fills buf with deterministic pseudo-text built from a small
// vocabulary of words, so the compressor finds realistic match structure.
func SyntheticText(buf []byte, seed int64) {
	words := []string{
		"the", "quick", "column", "cache", "embedded", "memory", "stream",
		"partition", "scratchpad", "replacement", "data", "of", "and", "a",
		"to", "in", "tint", "page", "system", "processor",
	}
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	i := 0
	for i < len(buf) {
		w := words[next()%uint64(len(words))]
		for j := 0; j < len(w) && i < len(buf); j++ {
			buf[i] = w[j]
			i++
		}
		if i < len(buf) {
			buf[i] = ' '
			i++
		}
	}
}

type compressor struct {
	cfg                      Config
	window                   []byte
	head                     []int32 // hash -> most recent position, -1 if none
	prev                     []int32 // position -> previous position in chain, -1 if none
	p                        probe
	winR, headR, prevR, outR memory.Region
	outPos                   uint64
}

type probe struct{ rec *memtrace.Recorder }

func (p probe) load(r memory.Region, off uint64) {
	if p.rec != nil {
		p.rec.LoadRegion(r, off)
	}
}

func (p probe) store(r memory.Region, off uint64) {
	if p.rec != nil {
		p.rec.StoreRegion(r, off)
	}
}

func (p probe) think(n int) {
	if p.rec != nil {
		p.rec.Think(n)
	}
}

func (z *compressor) hash(pos int) uint32 {
	// Reads the 3 bytes being hashed.
	z.p.load(z.winR, uint64(pos))
	z.p.load(z.winR, uint64(pos+1))
	z.p.load(z.winR, uint64(pos+2))
	z.p.think(3)
	h := uint32(z.window[pos])<<10 ^ uint32(z.window[pos+1])<<5 ^ uint32(z.window[pos+2])
	return h & (uint32(len(z.head)) - 1)
}

// matchLen compares the candidate at cand against pos, reading both sides.
func (z *compressor) matchLen(pos, cand int) int {
	max := z.cfg.MaxMatch
	if rem := len(z.window) - pos; rem < max {
		max = rem
	}
	n := 0
	for n < max {
		z.p.load(z.winR, uint64(cand+n))
		z.p.load(z.winR, uint64(pos+n))
		z.p.think(1)
		if z.window[cand+n] != z.window[pos+n] {
			break
		}
		n++
	}
	return n
}

func (z *compressor) insert(pos int, h uint32) {
	z.p.load(z.headR, uint64(h)*4)
	z.p.store(z.prevR, uint64(pos)*2)
	z.p.store(z.headR, uint64(h)*4)
	z.p.think(2)
	z.prev[pos] = z.head[h]
	z.head[h] = int32(pos)
}

func (z *compressor) emit(tok Token) {
	// A literal writes one output byte, a match writes three.
	n := uint64(1)
	if tok.Length > 0 {
		n = 3
	}
	for i := uint64(0); i < n; i++ {
		z.p.store(z.outR, z.outPos)
		z.outPos++
	}
	z.p.think(2)
}

func (z *compressor) run() []Token {
	cfg := z.cfg
	var toks []Token
	pos := 0
	for pos < len(z.window) {
		if pos+cfg.MinMatch > len(z.window) {
			z.p.load(z.winR, uint64(pos))
			toks = append(toks, Token{Literal: z.window[pos]})
			z.emit(Token{Literal: z.window[pos]})
			pos++
			continue
		}
		h := z.hash(pos)
		z.p.load(z.headR, uint64(h)*4)
		cand := z.head[h]
		bestLen, bestDist := 0, 0
		for chain := 0; cand >= 0 && chain < cfg.MaxChain; chain++ {
			z.p.think(2)
			if n := z.matchLen(pos, int(cand)); n > bestLen {
				bestLen, bestDist = n, pos-int(cand)
			}
			z.p.load(z.prevR, uint64(cand)*2)
			cand = z.prev[cand]
		}
		if bestLen >= cfg.MinMatch {
			toks = append(toks, Token{Distance: bestDist, Length: bestLen})
			z.emit(Token{Distance: bestDist, Length: bestLen})
			// Insert every position of the match into the chains, as
			// deflate's lazy loop does.
			end := pos + bestLen
			for ; pos < end && pos+cfg.MinMatch <= len(z.window); pos++ {
				z.insert(pos, z.hash(pos))
			}
			pos = end
		} else {
			z.p.load(z.winR, uint64(pos))
			toks = append(toks, Token{Literal: z.window[pos]})
			z.emit(Token{Literal: z.window[pos]})
			z.insert(pos, h)
			pos++
		}
	}
	return toks
}

func newCompressor(cfg Config, input []byte, p probe, winR, headR, prevR, outR memory.Region) *compressor {
	z := &compressor{
		cfg:    cfg,
		window: input,
		head:   make([]int32, 1<<cfg.HashBits),
		prev:   make([]int32, len(input)),
		p:      p,
		winR:   winR, headR: headR, prevR: prevR, outR: outR,
	}
	for i := range z.head {
		z.head[i] = -1
	}
	for i := range z.prev {
		z.prev[i] = -1
	}
	return z
}

// Compress runs the LZ77 matcher over input and returns its token stream,
// without recording. Used directly by tests and examples.
func Compress(cfg Config, input []byte) []Token {
	cfg = cfg.withDefaults()
	z := newCompressor(cfg, input, probe{}, memory.Region{}, memory.Region{}, memory.Region{}, memory.Region{})
	return z.run()
}

// Decompress expands a token stream back into bytes.
func Decompress(toks []Token) []byte {
	var out []byte
	for _, t := range toks {
		if t.Length == 0 {
			out = append(out, t.Literal)
			continue
		}
		start := len(out) - t.Distance
		for i := 0; i < t.Length; i++ {
			out = append(out, out[start+i])
		}
	}
	return out
}

// Job builds the compression workload as a traced program over synthetic
// text. base places the job's variables, so concurrent jobs get disjoint
// address spaces.
func Job(cfg Config, base memory.Addr) *workloads.Program {
	cfg = cfg.withDefaults()
	env := workloads.NewEnv(base)
	// prev entries are 16-bit (window positions fit), as in gzip itself;
	// the hot set (window + head + prev ≈ 56KB at defaults) then fits half
	// of the 128KB cache but not the 16KB one — the Figure 5 contrast.
	win := env.Space.Alloc("window", uint64(cfg.WindowBytes), 64)
	head := env.Space.Alloc("head", uint64(4<<cfg.HashBits), 64)
	prev := env.Space.Alloc("prev", uint64(2*cfg.WindowBytes), 64)
	out := env.Space.Alloc("out", uint64(3*cfg.WindowBytes), 64)

	input := make([]byte, cfg.WindowBytes)
	SyntheticText(input, cfg.Seed)
	z := newCompressor(cfg, input, probe{env.Rec}, win, head, prev, out)
	z.run()
	return env.Finish("gzip")
}
