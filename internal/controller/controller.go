// Package controller implements the online half of the paper's
// software-controlled cache: an epoch-based controller that watches each
// managed tint through a shadow-tag utility monitor (internal/umon) and, at
// every epoch boundary, redistributes the cache's columns across tints by
// marginal utility. Applying a new allocation uses nothing but
// tint.Table.SetMask — the paper's single-table-write repartitioning
// operation (§2.2) — so a decision costs one table write per moved tint and
// takes effect on the next replacement.
//
// The controller deliberately does not import internal/memsys: the machine
// drives it through the memsys.AccessObserver interface, which the
// Controller satisfies, so the dependency points from the machine to the
// observer and the controller stays reusable against any access source.
//
// The allocator is the greedy lookahead of utility-based cache
// partitioning: starting every tint at its minimum, it repeatedly gives the
// span of columns with the highest marginal hits-per-column to the tint that
// wants it most, under per-tint min/max bounds. A hysteresis threshold (a
// minimum predicted sampled-hit gain) keeps the allocation parked when the
// monitors see no meaningful imbalance, preventing remap thrash on noise.
package controller

import (
	"fmt"
	"sort"

	"colcache/internal/memory"
	"colcache/internal/replacement"
	"colcache/internal/tint"
	"colcache/internal/umon"
)

// Spec bounds one managed tint's allocation.
type Spec struct {
	ID tint.Tint
	// Min and Max bound the columns the allocator may give this tint.
	// Min must be at least 1: a tint mapped to zero columns would leave the
	// replacement unit no victim.
	Min, Max int
}

// Config parameterizes the controller.
type Config struct {
	// EpochAccesses is the decision interval, counted in observed accesses
	// of managed tints.
	EpochAccesses int64
	// MinGainHits is the hysteresis threshold: a candidate allocation is
	// applied only when the monitors predict at least this many additional
	// sampled hits per epoch over keeping the current one. 0 defaults to 1,
	// so a zero-gain shuffle never costs a remap.
	MinGainHits int64
	// SampleEvery thins the shadow-tag monitors to every n'th set (see
	// umon.Config); 0 monitors every set.
	SampleEvery int
}

func (c Config) withDefaults() Config {
	if c.MinGainHits <= 0 {
		c.MinGainHits = 1
	}
	return c
}

// TintEpoch is one managed tint's slice of a Decision.
type TintEpoch struct {
	Name     string  // tint debug name
	Columns  int     // allocation in force for the NEXT epoch
	Accesses int64   // observed accesses this epoch
	Misses   int64   // observed misses this epoch
	MissRate float64 // Misses/Accesses, 0 when idle
}

// Decision records one epoch boundary for the observability log.
type Decision struct {
	Epoch   int  // 0-based epoch index
	Applied bool // whether the allocation changed
	// Gain is the predicted sampled-hit improvement of the chosen
	// allocation over the previous one (0 when the allocator already agreed
	// with the current split).
	Gain   int64
	Remaps int // SetMask writes this decision performed
	Tints  []TintEpoch
}

// String renders a decision as a one-line log entry.
func (d Decision) String() string {
	s := fmt.Sprintf("epoch %d:", d.Epoch)
	for _, t := range d.Tints {
		s += fmt.Sprintf(" %s=%d(%.1f%% miss)", t.Name, t.Columns, 100*t.MissRate)
	}
	if d.Applied {
		s += fmt.Sprintf("  [remapped ×%d, predicted +%d hits]", d.Remaps, d.Gain)
	} else {
		s += "  [held]"
	}
	return s
}

// Controller is the epoch-based column-allocation controller. It is not
// safe for concurrent use; it rides the single-ported simulated machine.
type Controller struct {
	table *tint.Table
	cfg   Config
	specs []Spec
	index map[tint.Tint]int // tint → position in specs
	mons  []*umon.Monitor

	alloc     []int // current columns per managed tint, specs order
	epochAcc  []int64
	epochMiss []int64
	seen      int64
	epoch     int
	remaps    int64
	log       []Decision
}

// New builds a controller managing the given tints of table, for a cache
// with cacheSets sets of lineBytes lines. The specs' minima must fit within
// the table's columns and the maxima must be able to cover them, so every
// column always belongs to exactly one managed tint. The initial allocation
// (an even split respecting the bounds) is applied immediately.
func New(table *tint.Table, cacheSets, lineBytes int, specs []Spec, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if table == nil {
		return nil, fmt.Errorf("controller: nil tint table")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("controller: no tints to manage")
	}
	if cfg.EpochAccesses < 1 {
		return nil, fmt.Errorf("controller: epoch length %d < 1 access", cfg.EpochAccesses)
	}
	columns := table.NumColumns()
	specs = append([]Spec(nil), specs...)
	sort.Slice(specs, func(i, j int) bool { return specs[i].ID < specs[j].ID })
	index := make(map[tint.Tint]int, len(specs))
	sumMin, sumMax := 0, 0
	for i, sp := range specs {
		if sp.Min < 1 {
			return nil, fmt.Errorf("controller: tint %s min %d < 1 (a tint must keep at least one column)",
				table.Name(sp.ID), sp.Min)
		}
		if sp.Max < sp.Min || sp.Max > columns {
			return nil, fmt.Errorf("controller: tint %s bounds [%d,%d] invalid for %d columns",
				table.Name(sp.ID), sp.Min, sp.Max, columns)
		}
		if _, dup := index[sp.ID]; dup {
			return nil, fmt.Errorf("controller: tint %s listed twice", table.Name(sp.ID))
		}
		index[sp.ID] = i
		sumMin += sp.Min
		sumMax += sp.Max
	}
	if sumMin > columns {
		return nil, fmt.Errorf("controller: minima need %d columns, cache has %d", sumMin, columns)
	}
	if sumMax < columns {
		return nil, fmt.Errorf("controller: maxima cover only %d of %d columns", sumMax, columns)
	}
	c := &Controller{
		table:     table,
		cfg:       cfg,
		specs:     specs,
		index:     index,
		mons:      make([]*umon.Monitor, len(specs)),
		alloc:     make([]int, len(specs)),
		epochAcc:  make([]int64, len(specs)),
		epochMiss: make([]int64, len(specs)),
	}
	for i := range specs {
		m, err := umon.New(umon.Config{
			NumSets:     cacheSets,
			LineBytes:   lineBytes,
			Depth:       columns,
			SampleEvery: cfg.SampleEvery,
		})
		if err != nil {
			return nil, err
		}
		c.mons[i] = m
	}
	// Even initial split under the bounds: everyone starts at Min, then the
	// leftovers go round-robin in tint order.
	for i, sp := range specs {
		c.alloc[i] = sp.Min
	}
	for left := columns - sumMin; left > 0; {
		gave := false
		for i := range c.specs {
			if left == 0 {
				break
			}
			if c.alloc[i] < c.specs[i].Max {
				c.alloc[i]++
				left--
				gave = true
			}
		}
		if !gave {
			break
		}
	}
	if _, err := c.apply(c.alloc); err != nil {
		return nil, err
	}
	return c, nil
}

// ObserveAccess feeds one cached access; it satisfies
// memsys.AccessObserver. Accesses of unmanaged tints are ignored. Crossing
// the epoch boundary triggers a decision, whose remaps take effect on the
// very next replacement.
func (c *Controller) ObserveAccess(id tint.Tint, addr memory.Addr, miss bool) {
	i, ok := c.index[id]
	if !ok {
		return
	}
	c.mons[i].Observe(addr)
	c.epochAcc[i]++
	if miss {
		c.epochMiss[i]++
	}
	c.seen++
	if c.seen >= c.cfg.EpochAccesses {
		c.decide()
	}
}

// FinishEpoch forces a decision on whatever partial epoch has accumulated;
// callers use it at the end of a run so the log covers the whole trace. It
// is a no-op when no access has been observed since the last boundary.
func (c *Controller) FinishEpoch() {
	if c.seen > 0 {
		c.decide()
	}
}

// decide runs the allocator on this epoch's monitor data, applies the result
// if it clears the hysteresis threshold, logs the decision, and opens the
// next epoch.
func (c *Controller) decide() {
	target := c.allocate()
	gain := c.predictedHits(target) - c.predictedHits(c.alloc)
	applied, remapsThis := false, 0
	if !equalInts(target, c.alloc) && gain >= c.cfg.MinGainHits {
		n, err := c.apply(target)
		// SetMask can only fail on masks the controller never builds
		// (empty, out of range); treat failure as holding the allocation.
		if err == nil {
			copy(c.alloc, target)
			applied, remapsThis = true, n
		}
	}
	d := Decision{Epoch: c.epoch, Applied: applied, Remaps: remapsThis, Tints: make([]TintEpoch, len(c.specs))}
	if applied {
		d.Gain = gain
	}
	for i, sp := range c.specs {
		te := TintEpoch{
			Name:     c.table.Name(sp.ID),
			Columns:  c.alloc[i],
			Accesses: c.epochAcc[i],
			Misses:   c.epochMiss[i],
		}
		if te.Accesses > 0 {
			te.MissRate = float64(te.Misses) / float64(te.Accesses)
		}
		d.Tints[i] = te
	}
	c.log = append(c.log, d)
	c.epoch++
	c.seen = 0
	for i := range c.specs {
		c.epochAcc[i], c.epochMiss[i] = 0, 0
		c.mons[i].ResetEpoch()
	}
}

// allocate runs the greedy lookahead: starting from the minima, repeatedly
// hand the span of columns with the best marginal sampled-hits-per-column to
// its tint. Ties go to the lowest tint and the shortest span, keeping the
// result deterministic.
func (c *Controller) allocate() []int {
	columns := c.table.NumColumns()
	a := make([]int, len(c.specs))
	left := columns
	for i, sp := range c.specs {
		a[i] = sp.Min
		left -= sp.Min
	}
	for left > 0 {
		best, bestSpan := -1, 0
		var bestMU float64 = -1
		for i, sp := range c.specs {
			maxSpan := sp.Max - a[i]
			if maxSpan > left {
				maxSpan = left
			}
			base := c.mons[i].Hits(a[i])
			for k := 1; k <= maxSpan; k++ {
				mu := float64(c.mons[i].Hits(a[i]+k)-base) / float64(k)
				if mu > bestMU {
					best, bestSpan, bestMU = i, k, mu
				}
			}
		}
		if best < 0 {
			// Everyone is at Max; impossible when sum(Max) ≥ columns, but
			// never loop forever.
			break
		}
		a[best] += bestSpan
		left -= bestSpan
	}
	return a
}

// predictedHits sums the monitors' hit estimates under an allocation.
func (c *Controller) predictedHits(a []int) int64 {
	var n int64
	for i, m := range c.mons {
		n += m.Hits(a[i])
	}
	return n
}

// apply maps the allocation onto contiguous column ranges in tint order and
// writes only the masks that changed, returning how many table writes it
// performed.
func (c *Controller) apply(a []int) (int, error) {
	writes := 0
	start := 0
	for i, sp := range c.specs {
		mask := replacement.Range(start, start+a[i])
		start += a[i]
		if c.table.Mask(sp.ID) == mask {
			continue
		}
		if err := c.table.SetMask(sp.ID, mask); err != nil {
			return writes, err
		}
		writes++
		c.remaps++
	}
	return writes, nil
}

// Allocations returns the current columns per managed tint, in ascending
// tint order (matching Specs).
func (c *Controller) Allocations() []int {
	out := make([]int, len(c.alloc))
	copy(out, c.alloc)
	return out
}

// Specs returns the managed tints' bounds in ascending tint order.
func (c *Controller) Specs() []Spec {
	out := make([]Spec, len(c.specs))
	copy(out, c.specs)
	return out
}

// Remaps returns the total SetMask writes the controller has issued,
// including the initial split.
func (c *Controller) Remaps() int64 { return c.remaps }

// Decisions returns the epoch-by-epoch decision log.
func (c *Controller) Decisions() []Decision {
	out := make([]Decision, len(c.log))
	copy(out, c.log)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
