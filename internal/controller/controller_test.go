package controller

import (
	"strings"
	"testing"

	"colcache/internal/memory"
	"colcache/internal/replacement"
	"colcache/internal/tint"
)

const (
	testSets = 16
	testLine = 32
	testWays = 8
)

// newTable builds a tint table with two managed tints a and b.
func newTable(t *testing.T) (*tint.Table, tint.Tint, tint.Tint) {
	t.Helper()
	tb := tint.NewTable(testWays)
	return tb, tb.NewTint("a"), tb.NewTint("b")
}

// addrFor builds an address in the given set with the given tag for the
// test geometry.
func addrFor(set int, tag uint64) memory.Addr {
	return memory.Addr((tag<<4 | uint64(set)) << 5)
}

func newController(t *testing.T, tb *tint.Table, specs []Spec, cfg Config) *Controller {
	t.Helper()
	c, err := New(tb, testSets, testLine, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInitialEvenSplit(t *testing.T) {
	tb, a, b := newTable(t)
	c := newController(t, tb, []Spec{{a, 1, 7}, {b, 1, 7}}, Config{EpochAccesses: 100})
	if got := c.Allocations(); got[0] != 4 || got[1] != 4 {
		t.Fatalf("initial allocation = %v, want [4 4]", got)
	}
	if tb.Mask(a) != replacement.Range(0, 4) || tb.Mask(b) != replacement.Range(4, 8) {
		t.Errorf("initial masks = %v / %v, want contiguous halves", tb.Mask(a), tb.Mask(b))
	}
	if c.Remaps() == 0 {
		t.Error("initial split should count its table writes")
	}
}

// TestShiftTowardUtility drives tint a with a working set needing 6 columns
// and tint b with a single line, and checks the first epoch boundary moves
// columns to a.
func TestShiftTowardUtility(t *testing.T) {
	tb, a, b := newTable(t)
	c := newController(t, tb, []Spec{{a, 1, 7}, {b, 1, 7}}, Config{EpochAccesses: 4096})
	// Tint a cycles 6 tags per set: hits only with ≥6 columns.
	for pass := 0; pass < 4; pass++ {
		for set := 0; set < testSets; set++ {
			for tag := uint64(0); tag < 6; tag++ {
				c.ObserveAccess(a, addrFor(set, tag), pass == 0)
			}
		}
		// Tint b re-touches one line per set: content with 1 column.
		for set := 0; set < testSets; set++ {
			c.ObserveAccess(b, addrFor(set, 100), pass == 0)
		}
	}
	c.FinishEpoch()
	dec := c.Decisions()
	if len(dec) == 0 {
		t.Fatal("no decisions logged")
	}
	last := dec[len(dec)-1]
	alloc := c.Allocations()
	if alloc[0] < 6 {
		t.Errorf("tint a allocation = %d, want ≥6 (decisions: %v)", alloc[0], dec)
	}
	if alloc[0]+alloc[1] != testWays {
		t.Errorf("allocation %v does not cover the %d columns", alloc, testWays)
	}
	if !last.Applied && dec[0].Epoch == last.Epoch {
		t.Errorf("no epoch applied a remap: %v", dec)
	}
	if tb.Mask(a).Count() != alloc[0] || tb.Mask(b).Count() != alloc[1] {
		t.Errorf("masks (%v,%v) disagree with allocations %v", tb.Mask(a), tb.Mask(b), alloc)
	}
	// Decision log carries per-tint epoch stats.
	if last.Tints[0].Name != "a" || last.Tints[0].Accesses == 0 {
		t.Errorf("decision log missing tint stats: %+v", last)
	}
	if !strings.Contains(last.String(), "a=") {
		t.Errorf("decision String() = %q", last.String())
	}
}

// TestHysteresisHoldsOnNoise checks a huge MinGainHits parks the allocation
// even under imbalance.
func TestHysteresisHoldsOnNoise(t *testing.T) {
	tb, a, b := newTable(t)
	c := newController(t, tb, []Spec{{a, 1, 7}, {b, 1, 7}},
		Config{EpochAccesses: 256, MinGainHits: 1 << 40})
	before := c.Allocations()
	for pass := 0; pass < 8; pass++ {
		for set := 0; set < testSets; set++ {
			for tag := uint64(0); tag < 6; tag++ {
				c.ObserveAccess(a, addrFor(set, tag), false)
			}
		}
	}
	c.FinishEpoch()
	if got := c.Allocations(); !equalInts(got, before) {
		t.Errorf("allocation moved %v → %v despite hysteresis", before, got)
	}
	for _, d := range c.Decisions() {
		if d.Applied {
			t.Errorf("decision applied under infinite hysteresis: %v", d)
		}
	}
}

// TestIdleTintKeepsMin checks a tint with zero utility is pushed to its
// minimum, never to zero columns.
func TestIdleTintKeepsMin(t *testing.T) {
	tb, a, b := newTable(t)
	c := newController(t, tb, []Spec{{a, 1, 7}, {b, 2, 7}}, Config{EpochAccesses: 2048})
	for pass := 0; pass < 4; pass++ {
		for set := 0; set < testSets; set++ {
			for tag := uint64(0); tag < 6; tag++ {
				c.ObserveAccess(a, addrFor(set, tag), false)
			}
		}
	}
	c.FinishEpoch()
	alloc := c.Allocations()
	if alloc[1] != 2 {
		t.Errorf("idle tint b allocation = %d, want its min 2", alloc[1])
	}
	if tb.Mask(b).Count() != 2 {
		t.Errorf("idle tint b mask %v, want 2 columns", tb.Mask(b))
	}
	if tb.Mask(b) == 0 {
		t.Fatal("idle tint mapped to zero columns")
	}
}

// TestUnmanagedTintIgnored checks accesses of tints outside the specs do
// not advance the epoch.
func TestUnmanagedTintIgnored(t *testing.T) {
	tb, a, b := newTable(t)
	c := newController(t, tb, []Spec{{a, 1, 7}, {b, 1, 7}}, Config{EpochAccesses: 4})
	for i := 0; i < 100; i++ {
		c.ObserveAccess(tint.Default, addrFor(0, uint64(i)), true)
	}
	if len(c.Decisions()) != 0 {
		t.Errorf("unmanaged accesses produced %d decisions", len(c.Decisions()))
	}
}

func TestFinishEpochOnEmptyEpochIsNoop(t *testing.T) {
	tb, a, b := newTable(t)
	c := newController(t, tb, []Spec{{a, 1, 7}, {b, 1, 7}}, Config{EpochAccesses: 10})
	c.FinishEpoch()
	if len(c.Decisions()) != 0 {
		t.Errorf("FinishEpoch on an empty epoch logged %d decisions", len(c.Decisions()))
	}
}

func TestValidation(t *testing.T) {
	tb, a, b := newTable(t)
	cases := []struct {
		name  string
		specs []Spec
		cfg   Config
	}{
		{"no tints", nil, Config{EpochAccesses: 10}},
		{"zero min", []Spec{{a, 0, 4}, {b, 1, 7}}, Config{EpochAccesses: 10}},
		{"max over columns", []Spec{{a, 1, 9}, {b, 1, 7}}, Config{EpochAccesses: 10}},
		{"max under min", []Spec{{a, 3, 2}, {b, 1, 7}}, Config{EpochAccesses: 10}},
		{"duplicate tint", []Spec{{a, 1, 7}, {a, 1, 7}}, Config{EpochAccesses: 10}},
		{"minima overflow", []Spec{{a, 5, 7}, {b, 5, 7}}, Config{EpochAccesses: 10}},
		{"maxima underflow", []Spec{{a, 1, 3}, {b, 1, 3}}, Config{EpochAccesses: 10}},
		{"no epoch", []Spec{{a, 1, 7}, {b, 1, 7}}, Config{}},
	}
	for _, tc := range cases {
		if _, err := New(tb, testSets, testLine, tc.specs, tc.cfg); err == nil {
			t.Errorf("%s: New succeeded, want error", tc.name)
		}
	}
	if _, err := New(nil, testSets, testLine, []Spec{{a, 1, 7}}, Config{EpochAccesses: 10}); err == nil {
		t.Error("nil table accepted")
	}
}

// TestDeterminism re-runs an identical access stream and expects identical
// decision logs — the property the parallel experiment runner relies on.
func TestDeterminism(t *testing.T) {
	run := func() []Decision {
		tb := tint.NewTable(testWays)
		a, b := tb.NewTint("a"), tb.NewTint("b")
		c, err := New(tb, testSets, testLine, []Spec{{a, 1, 7}, {b, 1, 7}}, Config{EpochAccesses: 512})
		if err != nil {
			t.Fatal(err)
		}
		state := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < 8192; i++ {
			state ^= state >> 12
			state ^= state << 25
			state ^= state >> 27
			id, n := a, state%5
			if i%3 == 0 {
				id, n = b, state%11
			}
			c.ObserveAccess(id, addrFor(int(state>>8)%testSets, n), state&1 == 0)
		}
		c.FinishEpoch()
		return c.Decisions()
	}
	d1, d2 := run(), run()
	if len(d1) != len(d2) {
		t.Fatalf("decision counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].String() != d2[i].String() {
			t.Errorf("epoch %d differs:\n%s\n%s", i, d1[i], d2[i])
		}
	}
}
