// Layoutdemo: the paper's §3 data layout algorithm end to end, both ways.
//
// Profile method: record a streaming kernel's trace, build the conflict
// graph from life-time overlaps, color it into columns, apply to a machine
// and show the win over the unmanaged cache.
//
// Program-analysis method: describe a small program as loops/branches in the
// compiler IF and derive the same style of assignment statically.
package main

import (
	"fmt"

	"colcache"
	"colcache/internal/ir"
	"colcache/internal/layout"
)

// streamingProgram records a kernel whose reuse the plain LRU cache cannot
// exploit: every pass re-sweeps a 512B coefficient table (real reuse) while
// scanning fresh streaming input, so each coefficient's reuse distance
// exceeds the 2KB cache and LRU evicts it before it comes around again. The
// layout algorithm isolates the table in its own column instead.
func streamingProgram() (colcache.Trace, []colcache.Region) {
	m := colcache.MustNew(colcache.Config{PageBytes: 64})
	coeff := m.Alloc("coeff", 512)
	stream := m.Alloc("stream", 32*1024)
	var rec colcache.Recorder
	pos := uint64(0)
	for pass := 0; pass < 16; pass++ {
		for off := uint64(0); off < coeff.Size; off += 32 {
			rec.Think(2)
			rec.Load(coeff.Base + off)
			for j := 0; j < 4; j++ {
				rec.Think(1)
				rec.Load(stream.Base + pos%stream.Size)
				pos += 32
			}
		}
	}
	return rec.Trace(), []colcache.Region{coeff, stream}
}

func profileMethod() {
	trace, vars := streamingProgram()
	fmt.Println("profile method — coefficient re-sweep + input stream, 2KB 4-column cache")

	// Unmanaged baseline.
	base := colcache.MustNew(colcache.Config{PageBytes: 64})
	baseCycles := base.Run(trace)

	// Layout-managed.
	managed := colcache.MustNew(colcache.Config{PageBytes: 64})
	plan, err := managed.AutoLayout(trace, vars)
	if err != nil {
		panic(err)
	}
	managedCycles := managed.Run(trace)

	// Summarize by parent variable: which columns did each end up in?
	cols := map[string]map[int]int{}
	for _, c := range plan.Chunks {
		if c.Placement != layout.InColumn {
			continue
		}
		if cols[c.Parent] == nil {
			cols[c.Parent] = map[int]int{}
		}
		cols[c.Parent][c.Column]++
	}
	for _, v := range vars {
		fmt.Printf("  %-8s %6dB -> chunks per column: %v\n", v.Name, v.Size, cols[v.Name])
	}
	fmt.Printf("  unmanaged: %d cycles (miss rate %5.2f%%)\n", baseCycles, 100*base.Stats().Cache.MissRate())
	fmt.Printf("  laid out:  %d cycles (miss rate %5.2f%%)\n", managedCycles, 100*managed.Stats().Cache.MissRate())
	fmt.Println()
}

func staticMethod() {
	fmt.Println("program-analysis method — static IF estimates, no profiling run")
	// A toy kernel: a hot coefficient table read inside a doubly nested
	// loop, a streamed input, and a rarely-touched error buffer.
	prog := &ir.Program{
		Arrays: []ir.ArrayDecl{
			{Name: "coeff", Bytes: 256},
			{Name: "input", Bytes: 4096},
			{Name: "errbuf", Bytes: 256},
		},
		Body: []ir.Stmt{
			ir.Loop{Count: 64, Body: []ir.Stmt{
				ir.Loop{Count: 16, Body: []ir.Stmt{
					ir.Access{Array: "input"},
					ir.Access{Array: "coeff"},
					ir.Compute{Instrs: 2},
				}},
				ir.Branch{Prob: 0.05, Then: []ir.Stmt{
					ir.Access{Array: "errbuf", Write: true},
				}},
			}},
		},
	}
	plan, err := layout.BuildStatic(prog, layout.Machine{Columns: 4, ColumnBytes: 512})
	if err != nil {
		panic(err)
	}
	for _, a := range plan.Assignments {
		name := a.Array
		if a.Chunk >= 0 {
			name = fmt.Sprintf("%s#%d", a.Array, a.Chunk)
		}
		where := a.Placement.String()
		if a.Placement == layout.InColumn {
			where = fmt.Sprintf("column %d", a.Column)
		}
		fmt.Printf("  %-10s %5dB %9.1f est. accesses -> %s\n", name, a.Bytes, a.EstimatedAccesses, where)
	}
	fmt.Printf("  estimated conflict cost W = %d\n", plan.Cost)
}

func main() {
	profileMethod()
	staticMethod()
}
