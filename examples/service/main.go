// Service: run the simulator as a daemon and talk to it over HTTP.
//
// The example embeds colserved's service layer in-process, then uses the
// colcache.Client exactly as a remote caller would: submit a simulation,
// poll it while watching live progress, run a small sweep, and scrape the
// metrics — finishing with a graceful drain.
package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"colcache"
	"colcache/internal/service"
)

func main() {
	// A small server: two workers, shallow queue, everything else default.
	srv := service.New(service.Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := colcache.NewClient(ts.URL, &http.Client{Timeout: 10 * time.Second})
	ctx := context.Background()

	// 1. One simulation with a column mapping and the adaptive controller,
	// submitted asynchronously so we can watch it progress.
	spec := colcache.SimSpec{
		Label:   "mpeg under adaptive control",
		Machine: colcache.MachineSpec{Sets: 128, Ways: 4},
		Workload: &colcache.WorkloadSpec{
			Name: "mpeg-dequant", N: 600,
		},
		Adaptive: &colcache.AdaptiveSpec{EpochAccesses: 4096},
	}
	info, err := client.SubmitSimulate(ctx, spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("submitted %s (%s)\n", info.ID, info.State)

	final, err := client.Wait(ctx, info.ID)
	if err != nil {
		panic(err)
	}
	r := final.Result
	fmt.Printf("done: %d accesses, %d cycles, miss rate %.2f%%, %d remaps\n",
		r.TraceAccesses, r.Cycles, 100*r.Cache.MissRate, r.Remaps)
	for _, tv := range r.Tints {
		fmt.Printf("  tint %-10s -> columns %v\n", tv.Name, tv.Columns)
	}

	// 2. A sweep over associativity, batched server-side.
	sweep, err := client.Sweep(ctx, colcache.SweepSpec{
		Base: colcache.SimSpec{
			Machine:  colcache.MachineSpec{Sets: 64},
			Workload: &colcache.WorkloadSpec{Name: "fir", N: 2048},
		},
		Ways: []int{1, 2, 4, 8},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("\nfir, 64 sets, sweeping ways:")
	for _, p := range sweep.Points {
		fmt.Printf("  %-40s %8d cycles  miss %.2f%%\n",
			p.Label, p.Result.Cycles, 100*p.Result.Cache.MissRate)
	}

	// 3. The server kept books on everything we just did.
	text, err := client.Metrics(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nledger:")
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "colserved_jobs_total") {
			fmt.Println("  " + line)
		}
	}

	// 4. Graceful drain: in-flight work finishes, the queue refuses more.
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		panic(err)
	}
	fmt.Println("\ndrained cleanly")
}
