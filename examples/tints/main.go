// Tints: the paper's Figure 3 argument as running code. Remapping a cache
// partition through the tint indirection costs a couple of small-table
// writes; storing raw bit vectors in page-table entries would cost a write
// per page. The example replays the figure's 20-page scenario and counts
// the writes each scheme performs.
package main

import (
	"fmt"

	"colcache/internal/memory"
	"colcache/internal/replacement"
	"colcache/internal/tint"
	"colcache/internal/vm"
)

func main() {
	const pages = 20
	const columns = 20
	g := memory.MustGeometry(32, 4096)

	fmt.Println("goal: give page 0 its own column; keep the other 19 pages off it")
	fmt.Println()

	// --- tint scheme -----------------------------------------------------
	pt := vm.NewPageTable(g)
	tlb := vm.MustNewTLB(vm.DefaultTLBConfig, pt)
	table := tint.NewTable(columns)

	// All pages start with the default tint ("red"): all columns.
	blue := table.NewTint("blue")
	// 1 page-table write: page 0 becomes blue (and its TLB entry flushes).
	vm.Retint(pt, tlb, 0, uint64(g.PageBytes), blue)
	// 2 tint-table writes: blue gets column 1; red loses column 1.
	if err := table.SetMask(blue, replacement.Of(1)); err != nil {
		panic(err)
	}
	if err := table.SetMask(tint.Default, replacement.All(columns)&^replacement.Of(1)); err != nil {
		panic(err)
	}
	fmt.Printf("tint scheme:       %d page-table write(s) + %d tint-table write(s)\n",
		pt.Writes(), table.Remaps())
	fmt.Println(table.String())

	// --- raw-bit-vector scheme -------------------------------------------
	// With vectors stored directly in page-table entries, every page whose
	// permissible set changes needs its entry rewritten: page 0 gets its
	// own column AND pages 1..19 must drop column 1 — 20 writes.
	rawWrites := 0
	for p := 0; p < pages; p++ {
		rawWrites++ // each PTE's bit vector is rewritten
	}
	fmt.Printf("raw bit vectors:   %d page-table writes (one per page)\n", rawWrites)
	fmt.Println()
	fmt.Println("Re-tinting is the rare, expensive operation; remapping a tint to new")
	fmt.Println("columns is two table writes and takes effect on the next replacement.")
}
