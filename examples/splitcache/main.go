// Splitcache: emulating separate instruction and data caches inside one
// unified column cache (paper §2 lists split I/D structures among those a
// column cache can synthesize). A small assembly kernel runs on the
// simulated core; its loop body and its streaming data conflict in the
// unified cache, and mapping the code pages to their own columns ends the
// churn — no hardware split required, and the split ratio is a software
// decision.
package main

import (
	"fmt"
	"strings"

	"colcache/internal/cache"
	"colcache/internal/cpu"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/replacement"
)

// kernel builds a 1KB loop body that also streams 48 fresh cache lines per
// iteration: per-set pressure 5 lines into 4 ways, so LRU churns the code.
func kernel() string {
	var b strings.Builder
	b.WriteString("\tli r2, 0x100000\n\tli r3, 100\n\tli r5, 0\n\tli r6, 0\nloop:\n")
	n := 0
	for k := 0; k < 48; k++ {
		fmt.Fprintf(&b, "\tld r4, [r2+%d]\n", k*32)
		n++
	}
	for n < 248 {
		b.WriteString("\taddi r6, r6, 1\n")
		n++
	}
	b.WriteString("\taddi r2, r2, 1536\n\taddi r3, r3, -1\n\tbne r3, r5, loop\n\thalt\n")
	return b.String()
}

func run(split bool) {
	sys := memsys.MustNew(memsys.Config{
		Geometry: memory.MustGeometry(32, 64),
		Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
		Timing:   memsys.DefaultTiming,
	})
	prog := cpu.MustAssemble(kernel(), 0)
	if split {
		code := memory.Region{Name: "code", Base: prog.Base, Size: prog.CodeBytes()}
		data := memory.Region{Name: "data", Base: 0x100000, Size: 100 * 1536}
		if _, err := sys.MapRegion(code, replacement.Of(0, 1)); err != nil {
			panic(err)
		}
		if _, err := sys.MapRegion(data, replacement.Of(2, 3)); err != nil {
			panic(err)
		}
	}
	core := cpu.NewCore(sys, prog)
	if halted, err := core.Run(1_000_000); err != nil || !halted {
		panic(fmt.Sprintf("halted=%v err=%v", halted, err))
	}
	label := "unified (unmanaged)"
	if split {
		label = "I/D split by columns"
	}
	st := sys.Stats()
	fmt.Printf("%-22s instructions=%d  misses=%d  CPI=%.3f\n",
		label, core.Retired(), st.Cache.Misses, core.CPI())
}

func main() {
	fmt.Println("1KB loop + 48 fresh data lines/iteration on a 2KB 4-way unified cache")
	fmt.Println()
	run(false)
	run(true)
	fmt.Println()
	fmt.Println("Mapping code to columns 0-1 and data to 2-3 synthesizes a split")
	fmt.Println("I/D cache; unlike a hardware split, the ratio can change per task.")
}
