// Multitasking: the paper's Figure 5 experiment as a runnable demo. Three
// gzip jobs share one processor and one cache under round-robin scheduling;
// job A's CPI is measured as the context-switch quantum varies. With a
// standard cache the other jobs evict A's working set every quantum; with a
// column mapping A keeps its columns and its CPI becomes flat and low.
package main

import (
	"flag"
	"fmt"
	"os"

	"colcache/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full 1..1M quantum axis (slower)")
	flag.Parse()

	cfg := experiments.DefaultFig5Config
	if !*full {
		cfg.Quanta = []int64{1, 64, 4096, 262144, 1048576}
		cfg.TargetInstructions = 1 << 19
	}
	data, err := experiments.RunFig5(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "multitask: %v\n", err)
		os.Exit(1)
	}
	data.Table().Write(os.Stdout)
	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println(" * gzip.16k / gzip.128k: a standard cache — job A's CPI is high at small")
	fmt.Println("   quanta (B and C evict its working set every switch) and falls to the")
	fmt.Println("   batch value as the quantum grows.")
	fmt.Println(" * mapped: job A exclusively owns most of the columns — its CPI is low")
	fmt.Println("   and nearly independent of the quantum, which is the predictability")
	fmt.Println("   a real-time designer needs under interrupts and varying quanta.")
	if problems := data.Verify(); len(problems) == 0 {
		fmt.Println("\nshape check: all of the paper's qualitative claims hold")
	} else {
		for _, p := range problems {
			fmt.Printf("\nshape check FAILED: %s\n", p)
		}
	}
}
