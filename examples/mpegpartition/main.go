// MPEG partitioning: the paper's Figure 4 experiment as a runnable demo.
// Three decoder routines (dequant, plus, idct) run on a 2KB on-chip memory
// while the scratchpad/cache split sweeps from all-scratchpad to all-cache;
// the data layout algorithm places every variable for every split. The
// dynamic column-cache result — each routine at its own optimum — beats
// every static partition.
package main

import (
	"fmt"
	"os"

	"colcache/internal/experiments"
)

func main() {
	data, err := experiments.RunFig4(experiments.DefaultFig4Config)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpegpartition: %v\n", err)
		os.Exit(1)
	}
	for _, t := range data.Tables() {
		t.Write(os.Stdout)
		fmt.Println()
	}

	fmt.Println("Reading the tables:")
	fmt.Println(" * dequant and plus fit in 2KB: all-scratchpad wins (no cold misses),")
	fmt.Println("   and every column moved to cache adds cold-miss cycles.")
	fmt.Println(" * idct's data exceeds 2KB: with no cache its streaming blocks go to")
	fmt.Println("   main memory on every access; any cache at all is dramatically better.")
	fmt.Println(" * no single static split is right for all three — the column cache")
	fmt.Println("   repartitions between routines instead.")
	best := data.Total[0]
	for _, c := range data.Total {
		if c < best {
			best = c
		}
	}
	fmt.Printf(" * dynamic column cache: %d cycles vs %d for the best static split (%.1f%% better),\n",
		data.Column, best, 100*float64(best-data.Column)/float64(best))
	fmt.Printf("   paying only %d cycles of remapping overhead.\n", data.RemapOverheadCycles)
}
