// Realtime: column-emulated scratchpad for predictable latency (paper §2.3).
// A time-critical buffer is pinned into its own column — a one-to-one
// mapping of memory to cache that can never be replaced by other data —
// and its worst-case access latency collapses to the single-cycle hit time,
// no matter what else runs.
package main

import (
	"fmt"

	"colcache"
)

// measure runs interfering work interleaved with accesses to the critical
// buffer and returns the min/max/mean latency of the critical accesses.
func measure(m *colcache.Machine, critical colcache.Region, interference colcache.Region) (min, max int64, mean float64) {
	min, max = 1<<62, 0
	var total int64
	const rounds = 4096
	for i := 0; i < rounds; i++ {
		// Interrupt handler-ish burst of unrelated traffic.
		for j := 0; j < 8; j++ {
			m.Load(interference.Base + uint64((i*8+j)*32)%interference.Size)
		}
		// One time-critical access.
		c := m.Load(critical.Base + uint64(i*32)%critical.Size)
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		total += c
	}
	mean = float64(total) / rounds
	return min, max, mean
}

func run(pinned bool) {
	m := colcache.MustNew(colcache.Config{Columns: 4, ColumnBytes: 512, PageBytes: 64})
	critical := m.Alloc("critical", 512)
	interference := m.Alloc("interference", 1<<20)
	if pinned {
		if _, err := m.Pin(critical, 0); err != nil {
			panic(err)
		}
		if _, err := m.Map(interference, 1, 2, 3); err != nil {
			panic(err)
		}
	} else {
		// Warm it anyway — fairness: both configurations start resident.
		for off := uint64(0); off < critical.Size; off += 32 {
			m.Load(critical.Base + off)
		}
	}
	min, max, mean := measure(m, critical, interference)
	label := "standard cache"
	if pinned {
		label = "pinned column "
	}
	fmt.Printf("%s   latency min=%d max=%d mean=%.2f cycles\n", label, min, max, mean)
}

func main() {
	fmt.Println("time-critical 512B buffer vs bursty interference, 2KB 4-way cache")
	fmt.Println()
	run(false)
	run(true)
	fmt.Println()
	fmt.Println("Pinning bounds the worst case at the hit latency: the column behaves")
	fmt.Println("as scratchpad memory, but without a separate address space or copies.")
}
