// Quickstart: build a column cache, watch an unmanaged stream destroy a hot
// table's residency, then isolate the two with column mappings and watch the
// interference disappear.
package main

import (
	"fmt"

	"colcache"
)

func run(mapped bool) {
	m := colcache.MustNew(colcache.Config{
		Columns:     4,   // 4 columns ("ways")
		ColumnBytes: 512, // 2KB cache total
		PageBytes:   64,  // fine-grained mapping for a tiny on-chip memory
	})

	table := m.Alloc("table", 512)     // hot lookup table, fits one column
	stream := m.Alloc("stream", 1<<20) // streaming data, far larger than the cache

	if mapped {
		// Software control: the table gets column 0 exclusively, the stream
		// is confined to the other three columns.
		if _, err := m.Map(table, 0); err != nil {
			panic(err)
		}
		if _, err := m.Map(stream, 1, 2, 3); err != nil {
			panic(err)
		}
	}

	// Warm the table.
	for off := uint64(0); off < table.Size; off += 32 {
		m.Load(table.Base + off)
	}
	m.ResetStats()

	// Alternate bursts of streaming (enough lines per burst to turn over
	// every set of the little cache) with sweeps of the hot table.
	pos := uint64(0)
	for round := 0; round < 64; round++ {
		for j := 0; j < 64; j++ {
			m.Load(stream.Base + pos)
			pos += 32
		}
		for off := uint64(0); off < table.Size; off += 32 {
			m.Load(table.Base + off)
		}
	}

	st := m.Stats()
	label := "standard cache"
	if mapped {
		label = "column-mapped "
	}
	// 64 rounds × 64 stream lines are cold misses in both configurations;
	// anything beyond that is the table being evicted.
	tableMisses := st.Cache.Misses - 64*64
	fmt.Printf("%s  accesses=%5d  table misses=%5d  miss-rate=%5.1f%%  CPI=%.2f\n",
		label, st.Cache.Accesses, tableMisses, 100*st.Cache.MissRate(), st.CPI())
}

func main() {
	fmt.Println("hot 512B table + streaming data sharing a 2KB 4-way cache")
	fmt.Println()
	run(false)
	run(true)
	fmt.Println()
	fmt.Println("With column mapping the stream can no longer evict the table:")
	fmt.Println("only the stream's own cold misses remain.")
}
