// Observability: the production-facing side of a software-managed cache —
// check that a mapping actually does what you meant. Per-tint statistics
// attribute every access to the partition that governed it, Describe dumps
// the machine's mapping state, and VerifyIsolation statically proves the
// §2.3 real-time guarantee for a pinned region.
package main

import (
	"fmt"

	"colcache"
)

func main() {
	m := colcache.MustNew(colcache.Config{Columns: 4, ColumnBytes: 512, PageBytes: 64})
	m.EnablePerTintStats()

	critical := m.Alloc("critical", 512)
	stream := m.Alloc("stream", 1<<20)

	critTint, err := m.Pin(critical, 0)
	if err != nil {
		panic(err)
	}
	streamTint, err := m.Map(stream, 1, 2, 3)
	if err != nil {
		panic(err)
	}

	// Static check: is the pinned region's latency actually guaranteed?
	// Not yet — unmapped pages (default tint) may still replace into
	// column 0.
	if err := m.VerifyIsolation([]int{0}, critTint); err != nil {
		fmt.Println("guarantee check (before):", err)
	}
	// Close the hole by shrinking the default tint (tint 0) away from the
	// pinned column.
	if err := m.Remap(colcache.Tint(0), 1, 2, 3); err != nil {
		panic(err)
	}
	if err := m.VerifyIsolation([]int{0}, critTint); err == nil {
		fmt.Println("guarantee check (after):  column 0 is exclusively owned — WCET = hit latency")
	}
	fmt.Println()

	// Run a workload and read back per-partition behaviour.
	for i := 0; i < 4096; i++ {
		m.Load(stream.Base + uint64(i*32))
		m.Load(critical.Base + uint64(i*32%512))
	}
	for id, st := range m.TintStats() {
		name := m.System().Tints().Name(id)
		fmt.Printf("tint %-10s accesses=%5d  miss-rate=%5.1f%%\n", name, st.Accesses, 100*st.MissRate())
	}
	_ = streamTint
	fmt.Println()
	fmt.Print(m.Describe())
}
