package colcache_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	colcache "colcache"
	"colcache/internal/memtrace"
	"colcache/internal/service"
)

func newTestService(t *testing.T, cfg service.Config) (*colcache.Client, *service.Server) {
	t.Helper()
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
		ts.Close()
	})
	return colcache.NewClient(ts.URL, ts.Client()), srv
}

func clientSpec(label string) colcache.SimSpec {
	return colcache.SimSpec{
		Label:    label,
		Machine:  colcache.MachineSpec{Sets: 16, Ways: 4},
		Workload: &colcache.WorkloadSpec{Name: "stream", SizeBytes: 2048, Passes: 1},
	}
}

func TestClientSimulate(t *testing.T) {
	c, _ := newTestService(t, service.Config{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	res, err := c.Simulate(ctx, clientSpec("client-sim"))
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if res.Cycles <= 0 || res.Cache.Accesses <= 0 || res.Label != "client-sim" {
		t.Fatalf("degenerate result: %+v", res)
	}

	// The job remains pollable after completion.
	list, err := c.Jobs(ctx)
	if err != nil {
		t.Fatalf("jobs: %v", err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].State != colcache.StateDone {
		t.Fatalf("listing: %+v", list)
	}
	info, err := c.Job(ctx, list.Jobs[0].ID)
	if err != nil || info.Result == nil {
		t.Fatalf("job fetch: %v %+v", err, info)
	}
}

func TestClientSubmitTrace(t *testing.T) {
	c, _ := newTestService(t, service.Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	tr := make(colcache.Trace, 128)
	for i := range tr {
		tr[i] = colcache.Access{Addr: uint64(i * 64), Op: colcache.Write}
	}
	info, err := c.SubmitTrace(ctx, "uploaded", colcache.MachineSpec{Sets: 32, Ways: 2}, tr)
	if err != nil {
		t.Fatalf("submit trace: %v", err)
	}
	final, err := c.Wait(ctx, info.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != colcache.StateDone || final.Result.TraceAccesses != 128 {
		t.Fatalf("uploaded run: %+v", final)
	}
	if final.Result.Cache.Writebacks < 0 || final.Label != "uploaded" {
		t.Fatalf("bad result: %+v", final)
	}
}

func TestClientSweep(t *testing.T) {
	c, _ := newTestService(t, service.Config{Workers: 1, QueueDepth: 4, SweepWorkers: 2})
	res, err := c.Sweep(context.Background(), colcache.SweepSpec{
		Base:     clientSpec(""),
		Policies: []string{"lru", "fifo", "random"},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("want 3 points, got %d", len(res.Points))
	}
}

func TestClientErrors(t *testing.T) {
	c, srv := newTestService(t, service.Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	// Invalid spec: StatusError carrying the server's message.
	_, err := c.SubmitSimulate(ctx, colcache.SimSpec{Machine: colcache.MachineSpec{Policy: "mru"}})
	var se *colcache.StatusError
	if !errors.As(err, &se) || se.StatusCode != 400 {
		t.Fatalf("bad spec error: %v", err)
	}
	if !strings.Contains(se.Message, "policy") {
		t.Fatalf("message lost: %q", se.Message)
	}

	// Failed job: JobFailedError from the synchronous helper. An empty
	// inline trace builds a machine but has nothing to run — the server
	// rejects it as a bad spec or fails the job; either is an error here.
	spec := colcache.SimSpec{TraceText: "R 0\nW zzz\n"}
	if _, err := c.Simulate(ctx, spec); err == nil {
		t.Fatal("malformed trace_text run succeeded")
	}

	// Draining server: OverloadedError with a retry hint.
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	_, err = c.SubmitSimulate(ctx, clientSpec("late"))
	var oe *colcache.OverloadedError
	if !errors.As(err, &oe) || oe.StatusCode != 503 || oe.RetryAfter <= 0 {
		t.Fatalf("draining submit: %v", err)
	}
}

func TestClientMetrics(t *testing.T) {
	c, _ := newTestService(t, service.Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()
	if _, err := c.Simulate(ctx, clientSpec("m")); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		`colserved_jobs_total{kind="simulate",outcome="done"} 1`,
		"colserved_sim_accesses_total",
		"colserved_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}
}

// TestClientTraceRoundTripMatchesLocal pins the service to the local
// simulation: the same trace through colcache.Machine and through the HTTP
// service must report identical cycles.
func TestClientTraceRoundTripMatchesLocal(t *testing.T) {
	prog := memtrace.Trace{}
	for i := 0; i < 600; i++ {
		prog = append(prog, colcache.Access{Addr: uint64(i%50) * 32, Op: colcache.Read})
	}
	m, err := colcache.New(colcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	localCycles := m.Run(prog)

	c, _ := newTestService(t, service.Config{Workers: 1, QueueDepth: 4})
	info, err := c.SubmitTrace(context.Background(), "pin", colcache.MachineSpec{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(context.Background(), info.ID)
	if err != nil || final.State != colcache.StateDone {
		t.Fatalf("wait: %v %+v", err, final)
	}
	if final.Result.Cycles != localCycles {
		t.Fatalf("service cycles %d != local %d", final.Result.Cycles, localCycles)
	}
}
